"""Tests for cooperative job cancellation (CancelToken, cancel scopes).

The engine-layer satellite behind ``DELETE /jobs/{id}``: a thread-safe
latch checked between batches — serial and pooled paths, explicit
``cancel=`` arguments and thread-local ``cancel_scope`` blocks — that
drops queued batches instead of computing a result nobody will read,
while leaving the pool reusable afterwards.
"""

import threading

import pytest

from repro.circuits import Circuit
from repro.engine import CancelToken, Engine, Job, JobCancelled


def ghz_sampling_circuit(width: int = 3) -> Circuit:
    circuit = Circuit(width, width)
    circuit.h(0)
    for q in range(1, width):
        circuit.cx(q - 1, q)
    for q in range(width):
        circuit.measure(q, q)
    return circuit


def make_job(seed: int = 7, shots: int = 400, **overrides) -> Job:
    job = Job(circuit=ghz_sampling_circuit(), shots=shots, seed=seed)
    for key, value in overrides.items():
        setattr(job, key, value)
    return job


class TestCancelToken:
    def test_latch_semantics(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while untripped
        token.cancel()
        token.cancel()  # idempotent
        assert token.cancelled
        with pytest.raises(JobCancelled):
            token.raise_if_cancelled()

    def test_trippable_from_another_thread(self):
        token = CancelToken()
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join()
        assert token.cancelled


class TestEngineCancellation:
    def test_pre_cancelled_run_raises_immediately(self):
        token = CancelToken()
        token.cancel()
        with Engine() as engine:
            with pytest.raises(JobCancelled):
                engine.run(make_job(), cancel=token)
            assert engine.stats.jobs == 0

    def test_pre_cancelled_run_many_raises(self):
        token = CancelToken()
        token.cancel()
        with Engine(workers=2) as engine:
            with pytest.raises(JobCancelled):
                engine.run_many([make_job(seed=s) for s in (1, 2)], cancel=token)

    def test_untripped_token_changes_nothing(self):
        token = CancelToken()
        with Engine() as engine:
            plain = engine.run(make_job())
        with Engine() as engine:
            guarded = engine.run(make_job(), cancel=token)
        assert plain.counts == guarded.counts

    def test_serial_multi_batch_cancel_between_batches(self):
        # Cancel after the first batch lands: the serial path checks the
        # token before each inline batch.
        token = CancelToken()
        job = make_job(shots=300, batch_size=100)
        with Engine() as engine:
            original = engine.scheduler.obs
            calls = {"n": 0}
            import repro.engine.scheduler as sched_mod

            real = sched_mod.execute_batch

            def tripping(job_, batch, backend, trace=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    token.cancel()
                if trace is None:
                    return real(job_, batch, backend)
                return real(job_, batch, backend, trace)

            sched_mod.execute_batch = tripping
            try:
                with pytest.raises(JobCancelled):
                    engine.run(job, cancel=token)
            finally:
                sched_mod.execute_batch = real
            assert calls["n"] == 1  # batches 2 and 3 were never computed
            assert original is engine.scheduler.obs

    def test_pooled_sweep_cancelled_mid_flight_keeps_pool_reusable(self):
        token = CancelToken()
        jobs = [make_job(seed=seed, shots=200) for seed in range(6)]
        with Engine(workers=2) as engine:
            stream = engine.as_completed(jobs, cancel=token)
            first = next(stream)
            assert first is not None
            token.cancel()
            with pytest.raises(JobCancelled):
                for _ in stream:
                    pass
            # The pool survived cancel-and-drain: a fresh run works.
            result = engine.run(make_job(seed=99))
            assert result.shots == 400

    def test_cancelled_jobs_not_cached(self):
        token = CancelToken()
        job = make_job(shots=300, batch_size=100)
        with Engine(cache=True) as engine:
            token.cancel()
            with pytest.raises(JobCancelled):
                engine.run(job, cancel=token)
            assert engine.cache.stats.stores == 0


class TestCancelScope:
    def test_scope_applies_to_nested_calls(self):
        token = CancelToken()
        token.cancel()
        with Engine() as engine:
            with engine.cancel_scope(token):
                with pytest.raises(JobCancelled):
                    engine.run(make_job())
            # Outside the scope the token no longer applies.
            result = engine.run(make_job())
            assert result.shots == 400

    def test_explicit_token_wins_over_scope(self):
        scoped = CancelToken()
        explicit = CancelToken()
        explicit.cancel()
        with Engine() as engine:
            with engine.cancel_scope(scoped):
                with pytest.raises(JobCancelled):
                    engine.run(make_job(), cancel=explicit)

    def test_none_scope_is_transparent(self):
        token = CancelToken()
        token.cancel()
        with Engine() as engine:
            with engine.cancel_scope(token):
                with engine.cancel_scope(None):
                    # None means "no new scope", the outer token stays.
                    with pytest.raises(JobCancelled):
                        engine.run(make_job())

    def test_scope_is_thread_local(self):
        token = CancelToken()
        token.cancel()
        outcome = {}
        with Engine() as engine:
            def other_thread():
                try:
                    outcome["result"] = engine.run(make_job())
                except JobCancelled:  # pragma: no cover - the failure mode
                    outcome["result"] = None

            with engine.cancel_scope(token):
                thread = threading.Thread(target=other_thread)
                thread.start()
                thread.join()
        assert outcome["result"] is not None

    def test_scope_wraps_experiment_run(self):
        # The service-worker form: the engine call happens deep inside
        # Experiment.run, with no cancel= parameter to thread through.
        # (swap_test routes through engine.run_many; kinds like
        # ghz_fidelity sample frames directly and bypass the engine.)
        from repro.api import Experiment

        token = CancelToken()
        token.cancel()
        experiment = Experiment.swap_test(
            [[1, 0], [1, 0]], shots=200, seed=5
        )
        with Engine() as engine:
            with engine.cancel_scope(token):
                with pytest.raises(JobCancelled):
                    experiment.run(engine=engine)
