"""Unit tests for repro.utils.bits."""

from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_at,
    bits_to_int,
    flip_bit,
    int_to_bits,
    parity,
    popcount,
    set_bit,
)


class TestBitAt:
    def test_msb_is_qubit_zero(self):
        assert bit_at(0b100, 0, 3) == 1
        assert bit_at(0b100, 1, 3) == 0
        assert bit_at(0b100, 2, 3) == 0

    def test_lsb_is_last_qubit(self):
        assert bit_at(0b001, 2, 3) == 1

    def test_all_positions(self):
        value = 0b1011
        assert [bit_at(value, i, 4) for i in range(4)] == [1, 0, 1, 1]


class TestSetFlip:
    def test_set_bit_on(self):
        assert set_bit(0b000, 1, 3, 1) == 0b010

    def test_set_bit_off(self):
        assert set_bit(0b111, 1, 3, 0) == 0b101

    def test_set_bit_idempotent(self):
        assert set_bit(0b010, 1, 3, 1) == 0b010

    def test_flip_bit(self):
        assert flip_bit(0b000, 0, 3) == 0b100
        assert flip_bit(0b100, 0, 3) == 0b000


class TestConversions:
    def test_bits_to_int(self):
        assert bits_to_int([1, 0, 1]) == 0b101

    def test_int_to_bits(self):
        assert int_to_bits(0b101, 3) == [1, 0, 1]

    def test_int_to_bits_pads(self):
        assert int_to_bits(1, 4) == [0, 0, 0, 1]

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 12)) == value

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12))
    def test_roundtrip_bits(self, bits):
        assert int_to_bits(bits_to_int(bits), len(bits)) == bits


class TestParityPopcount:
    def test_parity_empty(self):
        assert parity([]) == 0

    def test_parity_odd(self):
        assert parity([1, 0, 1, 1]) == 1

    def test_parity_even(self):
        assert parity([1, 1]) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=20))
    def test_parity_matches_sum(self, bits):
        assert parity(bits) == sum(bits) % 2

    @given(st.integers(min_value=0, max_value=2**30))
    def test_popcount_matches_bin(self, value):
        assert popcount(value) == bin(value).count("1")


class TestBitAtSetConsistency:
    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=1),
    )
    def test_set_then_read(self, value, position, bit):
        assert bit_at(set_bit(value, position, 10, bit), position, 10) == bit

    @given(
        st.integers(min_value=0, max_value=2**10 - 1),
        st.integers(min_value=0, max_value=9),
    )
    def test_flip_changes_exactly_one(self, value, position):
        flipped = flip_bit(value, position, 10)
        diffs = [
            i for i in range(10) if bit_at(value, i, 10) != bit_at(flipped, i, 10)
        ]
        assert diffs == [position]
