"""Virtual distillation: error mitigation with the SWAP test (Sec 6.3).

A random pure target state is corrupted by a 30% depolarizing channel.
Estimating <Z> directly on the noisy state is biased; estimating it in the
multiplicative product state chi = rho^m / tr(rho^m) — one
``Experiment.virtual`` per point, numerator with a GHZ-controlled Z
insertion — suppresses the bias exponentially in the copy count m [26].

Run:  python examples/virtual_distillation.py
"""

import numpy as np

from repro import Experiment
from repro.utils import noisy_pure_state


def main() -> None:
    rng = np.random.default_rng(13)
    target, noisy = noisy_pure_state(1, noise=0.3, rng=rng)
    z = np.diag([1.0, -1.0]).astype(complex)
    ideal = float(np.real(np.vdot(target, z @ target)))
    raw = float(np.real(np.trace(z @ noisy)))
    print(f"target <Z>           = {ideal:+.4f}")
    print(f"noisy state <Z>      = {raw:+.4f}   (bias {abs(raw - ideal):.4f})")
    print()
    print(f"{'copies m':>9} {'exact <Z>_chi':>14} {'estimated':>10} {'bias':>8}")
    for copies in (2, 3, 4):
        result = Experiment.virtual(
            noisy, "Z", copies, shots=12000, seed=copies, variant="d"
        ).run(with_exact=True)
        print(
            f"{copies:>9} {result.exact:>14.4f} {result.estimate:>10.4f} "
            f"{abs(result.exact - ideal):>8.4f}"
        )
    print("\nthe bias of the virtually distilled expectation shrinks with m,")
    print("without ever preparing the purified state.")


if __name__ == "__main__":
    main()
