"""Distributed program builder.

Accumulates gate-level operations against a growing :class:`Machine`
allocation, then materialises a flat :class:`~repro.circuits.Circuit`.  The
builder provides:

* on-the-fly qubit allocation per QPU (registers, ancillas, Bell halves),
* classical-bit allocation for mid-circuit measurements,
* tagged Bell-pair *generation* events (the only multi-qubit operations
  allowed to span QPUs — they model physical entanglement distribution),
* a locality validator proving that everything else is intra-QPU, and
* Bell-pair consumption accounting via :class:`BellLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..circuits.circuit import Circuit, Condition
from .bell import BellLedger, BellPair
from .qpu import Machine
from .topology import Topology

__all__ = ["DistributedProgram", "LocalityReport", "LocalityViolation"]


@dataclass(frozen=True)
class LocalityViolation:
    """One multi-qubit gate that illegally spans QPUs.

    Carries the instruction index, the gate, and the owner QPU of every
    involved qubit so the offending teleoperation can be located directly.
    """

    index: int
    name: str
    qubits: tuple[int, ...]
    owners: tuple[str, ...]
    """Owning QPU of each entry of ``qubits``, in the same order."""

    @property
    def qpus(self) -> tuple[str, ...]:
        """The distinct QPUs spanned, sorted."""
        return tuple(sorted(set(self.owners)))

    def __str__(self) -> str:
        placed = ", ".join(f"q{q}@{o}" for q, o in zip(self.qubits, self.owners))
        return (
            f"instruction {self.index}: {self.name} on ({placed}) spans QPUs "
            f"{list(self.qpus)} without a Bell-generation tag"
        )


@dataclass
class LocalityReport:
    """Result of the locality audit of a built circuit."""

    local_ops: int
    bell_generation_ops: int
    violations: list[LocalityViolation] = field(default_factory=list)

    @property
    def is_local(self) -> bool:
        """True when no multi-qubit gate illegally spans QPUs."""
        return not self.violations

    def describe(self) -> str:
        """Human-readable audit summary, one line per violation."""
        if self.is_local:
            return (
                f"local: {self.local_ops} intra-QPU multi-qubit ops, "
                f"{self.bell_generation_ops} Bell generations"
            )
        return "\n".join(str(v) for v in self.violations)


class DistributedProgram:
    """Builder for circuits that execute across a multi-QPU machine."""

    def __init__(self, topology: Topology | None = None):
        self.machine = Machine()
        self.topology = topology
        self.ledger = BellLedger(topology)
        self._ops: list[tuple] = []  # (name, qubits, clbits, params, condition)
        self._bell_ops: set[int] = set()  # indices into _ops exempt from locality
        self._bell_hops: dict[int, int] = {}  # op index -> hop distance (CX events)
        self.num_clbits = 0
        if topology is not None:
            for name in topology.nodes:
                self.machine.add_qpu(name)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def add_qpu(self, name: str) -> None:
        """Add a QPU (only needed when no topology was given)."""
        self.machine.add_qpu(name)

    def alloc(self, qpu: str, label: str, count: int) -> list[int]:
        """Allocate a named register of ``count`` qubits on a QPU."""
        return self.machine.alloc(qpu, label, count)

    def alloc_clbits(self, count: int) -> list[int]:
        """Allocate fresh classical bits."""
        out = list(range(self.num_clbits, self.num_clbits + count))
        self.num_clbits += count
        return out

    def create_bell_pair(self, qubit_a: int, qubit_b: int, purpose: str = "") -> BellPair:
        """Prepare |Phi+> across two already-allocated qubits on distinct QPUs.

        The H+CX generation event is tagged exempt from the locality audit
        (it stands in for physical entanglement distribution) and consumption
        is recorded in the ledger.
        """
        qpu_a = self.machine.owner(qubit_a)
        qpu_b = self.machine.owner(qubit_b)
        if qpu_a == qpu_b:
            raise ValueError("Bell pair must span two QPUs")
        hops = self.ledger.record(qpu_a, qpu_b, purpose)
        self._bell_ops.add(len(self._ops))
        self._ops.append(("h", (qubit_a,), (), (), None))
        # The CX is *the* distribution event: the lowering tags it with the
        # hop distance so link-aware noise models can attach hop-weighted
        # faults exactly where the ledger records physical-pair consumption.
        self._bell_ops.add(len(self._ops))
        self._bell_hops[len(self._ops)] = hops
        self._ops.append(("cx", (qubit_a, qubit_b), (), (), None))
        return BellPair(qubit_a, qubit_b, qpu_a, qpu_b)

    # ------------------------------------------------------------------
    # Instructions (thin mirrors of the Circuit API)
    # ------------------------------------------------------------------
    def gate(
        self,
        name: str,
        qubits: Sequence[int],
        params: Sequence[float] = (),
        condition: Condition | None = None,
    ) -> "DistributedProgram":
        """Append a gate by name."""
        self._ops.append((name, tuple(qubits), (), tuple(params), condition))
        return self

    def h(self, q: int) -> "DistributedProgram":
        """Hadamard."""
        return self.gate("h", [q])

    def x(self, q: int, condition: Condition | None = None) -> "DistributedProgram":
        """Pauli X (optionally classically conditioned)."""
        return self.gate("x", [q], condition=condition)

    def z(self, q: int, condition: Condition | None = None) -> "DistributedProgram":
        """Pauli Z (optionally classically conditioned)."""
        return self.gate("z", [q], condition=condition)

    def s(self, q: int) -> "DistributedProgram":
        """Phase gate."""
        return self.gate("s", [q])

    def sdg(self, q: int) -> "DistributedProgram":
        """Inverse phase gate."""
        return self.gate("sdg", [q])

    def t(self, q: int) -> "DistributedProgram":
        """T gate."""
        return self.gate("t", [q])

    def tdg(self, q: int) -> "DistributedProgram":
        """Inverse T gate."""
        return self.gate("tdg", [q])

    def cx(self, c: int, t: int) -> "DistributedProgram":
        """CNOT (must be intra-QPU; use telegate for remote)."""
        return self.gate("cx", [c, t])

    def cz(self, a: int, b: int) -> "DistributedProgram":
        """CZ."""
        return self.gate("cz", [a, b])

    def ccx(self, c0: int, c1: int, t: int) -> "DistributedProgram":
        """Toffoli."""
        return self.gate("ccx", [c0, c1, t])

    def cswap(self, c: int, a: int, b: int) -> "DistributedProgram":
        """Fredkin."""
        return self.gate("cswap", [c, a, b])

    def swap(self, a: int, b: int) -> "DistributedProgram":
        """SWAP."""
        return self.gate("swap", [a, b])

    def measure(self, qubit: int) -> int:
        """Measure into a freshly allocated classical bit; returns the clbit."""
        (clbit,) = self.alloc_clbits(1)
        self._ops.append(("measure", (qubit,), (clbit,), (), None))
        return clbit

    def reset(self, qubit: int) -> "DistributedProgram":
        """Reset a qubit to |0>."""
        self._ops.append(("reset", (qubit,), (), (), None))
        return self

    def barrier(self, qubits: Sequence[int] | None = None) -> "DistributedProgram":
        """Scheduling barrier."""
        qs = tuple(range(self.machine.num_qubits)) if qubits is None else tuple(qubits)
        self._ops.append(("barrier", qs, (), (), None))
        return self

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------
    def build(self, name: str = "distributed") -> Circuit:
        """Materialise the accumulated program into a QPU-tagged flat Circuit.

        Every intra-QPU instruction is tagged with its owning QPU and every
        Bell-generation CX with its hop distance, so downstream consumers
        (site-aware noise models, the compiler, resource accounting) can
        resolve per-site behaviour without re-deriving qubit ownership.
        """
        return self.build_range(0, len(self._ops), name=name)

    def build_range(self, start: int, end: int, name: str = "slice") -> Circuit:
        """Materialise a half-open instruction range (for stage-depth reports)."""
        circuit = Circuit(self.machine.num_qubits, self.num_clbits, name=name)
        for index in range(start, end):
            op_name, qubits, clbits, params, condition = self._ops[index]
            if op_name == "barrier":
                circuit.barrier(qubits)
                continue
            circuit.append(
                op_name,
                qubits,
                clbits,
                params,
                condition,
                qpu=self._owner_tag(index, qubits),
                hops=self._bell_hops.get(index, 0),
            )
        return circuit

    def _owner_tag(self, index: int, qubits: tuple[int, ...]) -> str | None:
        """The owning QPU of an op, or None for cross-QPU Bell generations."""
        if index in self._bell_hops:
            return None
        owners = {self.machine.owner(q) for q in qubits}
        if len(owners) == 1:
            return next(iter(owners))
        return None

    def cursor(self) -> int:
        """Current instruction count (pair with :meth:`build_range`)."""
        return len(self._ops)

    def audit_locality(self) -> LocalityReport:
        """Verify every multi-qubit gate is intra-QPU or a Bell generation."""
        local = 0
        bell = 0
        violations: list[LocalityViolation] = []
        for index, (op_name, qubits, _clbits, _params, _cond) in enumerate(self._ops):
            if op_name == "barrier" or len(qubits) < 2:
                continue
            owners = tuple(self.machine.owner(q) for q in qubits)
            if index in self._bell_ops:
                bell += 1
                continue
            if len(set(owners)) == 1:
                local += 1
            else:
                violations.append(
                    LocalityViolation(
                        index=index, name=op_name, qubits=tuple(qubits), owners=owners
                    )
                )
        return LocalityReport(local, bell, violations)
