"""Checkpointed parameter sweeps: crash-safe, resumable, streaming.

The paper's headline results are parameter sweeps of hundreds of small
jobs, so long sweeps need two things: a worker pool that stays busy
across job boundaries (the engine's cross-job pipeline does that
automatically) and crash safety.  This example runs a GHZ-fidelity sweep
with ``checkpoint=``, "kills" it partway by abandoning the streaming
iterator, and then resumes: the finished points are loaded from the
checkpoint (flagged ``result.resumed``) and only the unfinished ones are
recomputed.  The streaming iterator also shows incremental progress via
``SweepResult.partial()``.

Run:  python examples/checkpointed_sweep.py
"""

import tempfile
from pathlib import Path

from repro import Engine, Experiment


def main() -> None:
    parties = [3, 4, 5, 6, 7, 8]
    base = Experiment.ghz_fidelity(parties[0], p=0.004, shots=4000, seed=21)
    checkpoint = Path(tempfile.mkdtemp(prefix="repro-checkpoint-"))
    print(f"checkpoint directory = {checkpoint}")

    # First leg: stream the sweep, reporting progress per point, and stop
    # after three points — simulating a crash or a killed batch job.
    with Engine(workers=2) as engine:
        iterator = base.sweep_iter(
            over="num_parties", values=parties, engine=engine, checkpoint=checkpoint
        )
        for point, sweep in iterator:
            snapshot = sweep.partial()  # safe to persist/report mid-sweep
            print(
                f"  point {len(snapshot)}/{snapshot.total}: "
                f"num_parties={point.params['num_parties']} "
                f"fidelity={point.result.estimate:.4f}"
            )
            if len(snapshot) == 3:
                iterator.close()
                print("  ... killed after 3 points (iterator abandoned)")
                break
        print(f"jobs executed before the kill: {engine.stats.jobs}")

    # Second leg: the same sweep resumes from the checkpoint.  Points 1-3
    # are served from disk; only 4-6 execute jobs.
    with Engine(workers=2) as engine:
        sweep = base.sweep(
            over="num_parties", values=parties, engine=engine, checkpoint=checkpoint
        )
        print(f"\nresumed run: {sweep.resumed} points from checkpoint, "
              f"{engine.stats.jobs} jobs recomputed")
    for point in sweep:
        tag = "resumed " if point.result.resumed else "computed"
        print(
            f"  [{tag}] num_parties={point.params['num_parties']} "
            f"fidelity={point.result.estimate:.4f} (seed {point.result.seed})"
        )
    assert sweep.complete

    # The recorded seed makes the whole sweep reproducible from scratch:
    # a checkpoint-free re-run lands on identical estimates.
    reference = base.sweep(over="num_parties", values=parties)
    assert reference.estimates() == sweep.estimates()
    print("\ncheckpoint-free re-run is bit-identical to the resumed sweep")


if __name__ == "__main__":
    main()
