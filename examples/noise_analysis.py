"""Mini noise study: the Section 5 pipeline end to end on a laptop budget.

1. Sample the Fanout's effective Pauli error distribution (Table 4 method).
2. Estimate distributed GHZ fidelity by frame sampling, as one
   ``Experiment.ghz_fidelity`` sweep over the party count (Fig 9a).
3. Blackboxed classical fidelity of both CSWAP designs (Fig 9b).
4. Compose the overall protocol fidelity bound (Fig 9c).

Run:  python examples/noise_analysis.py
"""

from repro import Experiment
from repro.analysis import PrimitiveErrorModel, cswap_classical_fidelity

P = 0.003  # the paper's middle noise level


def main() -> None:
    print(f"== Fanout error distribution (p = {P}, 4 targets) ==")
    report = Experiment.fanout_errors(4, P, shots=30000, seed=1).run().raw
    for label, prob in report.top_errors(4):
        print(f"   {label}: {prob:.2%}")
    print(f"   any error: {report.error_probability():.2%}")

    print("\n== Distributed GHZ fidelity (frame sampling) ==")
    sweep = Experiment.ghz_fidelity(4, P, shots=8000, seed=4).sweep(
        over="num_parties", values=[4, 8, 12]
    )
    for point in sweep:
        print(f"   r = {point.params['num_parties']:>2}: {point.result.estimate:.4f}")

    print("\n== Two-party CSWAP classical fidelity (blackboxed, Sec 5.2) ==")
    model = PrimitiveErrorModel(P, shots=6000, seed=2)
    cswap_error = {}
    for design in ("teledata", "telegate"):
        for n in (1, 2):
            result = cswap_classical_fidelity(
                design, n, P, shots_per_input=10, max_inputs=24, seed=3, model=model
            )
            cswap_error[(design, n)] = 1.0 - result.fidelity
            print(f"   {design:>8} n={n}: {result.fidelity:.4f}")

    print("\n== Overall fidelity estimate, k = 8 (Sec 5.4) ==")
    for design in ("teledata", "telegate"):
        for n in (1, 2):
            point = Experiment.overall_fidelity(
                design, n, 8, P, ghz_shots=8000, seed=4,
                cswap_error=cswap_error[(design, n)],
            ).run()
            print(f"   {design:>8} n={n}: {point.estimate:.4f}")


if __name__ == "__main__":
    main()
