"""Gate registry: names, arities, and unitary matrices.

Conventions
-----------
* Qubit 0 is the most significant bit: a gate applied to qubits ``(a, b)``
  has its matrix written in the ordered basis ``|ab>``.
* Controlled gates list controls before targets, e.g. ``CX(control, target)``,
  ``CCX(c0, c1, target)``, ``CSWAP(control, x, y)``.
* Parameterised rotations take angles in radians.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from collections.abc import Callable, Sequence

import numpy as np

__all__ = [
    "GateSpec",
    "GATES",
    "gate_matrix",
    "cached_gate_matrix",
    "is_clifford_gate",
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "CX_MATRIX",
    "CZ_MATRIX",
    "SWAP_MATRIX",
    "CCX_MATRIX",
    "CSWAP_MATRIX",
]

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
TDG = T.conj().T

CX_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CZ_MATRIX = np.diag([1, 1, 1, -1]).astype(complex)
SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _permutation_matrix(dim: int, mapping: dict[int, int]) -> np.ndarray:
    matrix = np.zeros((dim, dim), dtype=complex)
    for col in range(dim):
        matrix[mapping.get(col, col), col] = 1.0
    return matrix


# CCX: flip target (last qubit) when both controls are 1 -> swaps |110>,|111>.
CCX_MATRIX = _permutation_matrix(8, {0b110: 0b111, 0b111: 0b110})
# CSWAP: swap the two target qubits when control (first qubit) is 1.
CSWAP_MATRIX = _permutation_matrix(8, {0b101: 0b110, 0b110: 0b101})


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[Sequence[float]], np.ndarray]
    clifford: bool

    def matrix(self, params: Sequence[float] = ()) -> np.ndarray:
        """Unitary matrix for the given parameters."""
        if len(params) != self.num_params:
            raise ValueError(
                f"gate {self.name} expects {self.num_params} params, got {len(params)}"
            )
        return self.matrix_fn(params)


def _const(matrix: np.ndarray) -> Callable[[Sequence[float]], np.ndarray]:
    def fn(_params: Sequence[float]) -> np.ndarray:
        return matrix

    return fn


GATES: dict[str, GateSpec] = {
    "id": GateSpec("id", 1, 0, _const(I2), True),
    "x": GateSpec("x", 1, 0, _const(X), True),
    "y": GateSpec("y", 1, 0, _const(Y), True),
    "z": GateSpec("z", 1, 0, _const(Z), True),
    "h": GateSpec("h", 1, 0, _const(H), True),
    "s": GateSpec("s", 1, 0, _const(S), True),
    "sdg": GateSpec("sdg", 1, 0, _const(SDG), True),
    "t": GateSpec("t", 1, 0, _const(T), False),
    "tdg": GateSpec("tdg", 1, 0, _const(TDG), False),
    "rx": GateSpec("rx", 1, 1, lambda p: _rx(p[0]), False),
    "ry": GateSpec("ry", 1, 1, lambda p: _ry(p[0]), False),
    "rz": GateSpec("rz", 1, 1, lambda p: _rz(p[0]), False),
    "cx": GateSpec("cx", 2, 0, _const(CX_MATRIX), True),
    "cz": GateSpec("cz", 2, 0, _const(CZ_MATRIX), True),
    "swap": GateSpec("swap", 2, 0, _const(SWAP_MATRIX), True),
    "ccx": GateSpec("ccx", 3, 0, _const(CCX_MATRIX), False),
    "cswap": GateSpec("cswap", 3, 0, _const(CSWAP_MATRIX), False),
}

_INVERSES = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
}


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Unitary matrix of a registered gate."""
    spec = GATES.get(name)
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    return spec.matrix(params)


@lru_cache(maxsize=None)
def cached_gate_matrix(name: str) -> np.ndarray:
    """Memoised :func:`gate_matrix` for parameterless gates.

    Hot loops (the per-shot reference interpreter, the compiler) resolve the
    same constant matrices over and over; this skips the registry lookup and
    arity check after the first call.  The returned array is shared — callers
    must not mutate it.
    """
    spec = GATES.get(name)
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    if spec.num_params:
        raise ValueError(f"gate {name} is parameterised; use gate_matrix")
    return spec.matrix(())


def is_clifford_gate(name: str) -> bool:
    """Whether the named gate is in the Clifford group."""
    spec = GATES.get(name)
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    return spec.clifford


def inverse_gate(name: str, params: Sequence[float] = ()) -> tuple[str, tuple[float, ...]]:
    """Name/params of the inverse of a registered gate."""
    if name in _INVERSES:
        return _INVERSES[name], tuple(params)
    if name in ("rx", "ry", "rz"):
        return name, (-params[0],)
    spec = GATES.get(name)
    if spec is None:
        raise KeyError(f"unknown gate {name!r}")
    # All remaining registered gates are self-inverse.
    return name, tuple(params)
