"""Unit and property tests for the Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.pauli import Pauli

LABEL_CHARS = "IXYZ"


def labels(max_n=4):
    return st.text(alphabet=LABEL_CHARS, min_size=1, max_size=max_n)


class TestConstruction:
    def test_identity(self):
        p = Pauli.identity(3)
        assert p.is_identity() and p.weight == 0

    def test_from_label_roundtrip(self):
        for label in ("XIZ", "YYI", "IIII", "Z"):
            assert Pauli.from_label(label).bare_label() == label

    def test_sign_prefix(self):
        assert Pauli.from_label("-X").to_label() == "-X"
        assert Pauli.from_label("+Z").to_label() == "+Z"

    def test_single_factory(self):
        p = Pauli.single(3, 1, "Y")
        assert p.bare_label() == "IYI"

    def test_invalid_char(self):
        with pytest.raises(ValueError):
            Pauli.from_label("XQ")

    def test_weight(self):
        assert Pauli.from_label("XIYZ").weight == 3


class TestMultiplication:
    def test_xy_equals_iz(self):
        x = Pauli.from_label("X")
        y = Pauli.from_label("Y")
        product = x * y
        assert product.bare_label() == "Z"
        assert np.allclose(product.to_matrix(), x.to_matrix() @ y.to_matrix())

    @given(labels(3), labels(3))
    @settings(max_examples=60, deadline=None)
    def test_matrix_homomorphism(self, a, b):
        if len(a) != len(b):
            b = (b + "I" * len(a))[: len(a)]
        pa, pb = Pauli.from_label(a), Pauli.from_label(b)
        assert np.allclose((pa * pb).to_matrix(), pa.to_matrix() @ pb.to_matrix())

    @given(labels(4))
    @settings(max_examples=40, deadline=None)
    def test_self_product_phase(self, label):
        p = Pauli.from_label(label)
        square = p * p
        # Hermitian Paulis square to +I.
        assert square.is_identity(up_to_phase=False)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            Pauli.from_label("X") * Pauli.from_label("XX")


class TestCommutation:
    def test_xz_anticommute(self):
        assert not Pauli.from_label("X").commutes_with(Pauli.from_label("Z"))

    def test_xx_commute(self):
        assert Pauli.from_label("XX").commutes_with(Pauli.from_label("ZZ"))

    @given(labels(4), labels(4))
    @settings(max_examples=60, deadline=None)
    def test_commutation_matches_matrices(self, a, b):
        n = max(len(a), len(b))
        a = (a + "I" * n)[:n]
        b = (b + "I" * n)[:n]
        pa, pb = Pauli.from_label(a), Pauli.from_label(b)
        ma, mb = pa.to_matrix(), pb.to_matrix()
        commutator = ma @ mb - mb @ ma
        assert pa.commutes_with(pb) == bool(np.allclose(commutator, 0))

    @given(labels(4))
    @settings(max_examples=30, deadline=None)
    def test_commutes_with_self(self, label):
        p = Pauli.from_label(label)
        assert p.commutes_with(p)


class TestMisc:
    def test_hash_and_eq(self):
        a = Pauli.from_label("XZ")
        b = Pauli.from_label("XZ")
        assert a == b and hash(a) == hash(b)

    def test_equal_up_to_phase(self):
        a = Pauli.from_label("X")
        b = Pauli.from_label("-X")
        assert a != b and a.equal_up_to_phase(b)

    def test_restricted(self):
        p = Pauli.from_label("XIZY")
        assert p.restricted([0, 2]).bare_label() == "XZ"
        assert p.restricted([3]).bare_label() == "Y"

    def test_matrix_of_y(self):
        assert np.allclose(
            Pauli.from_label("Y").to_matrix(), np.array([[0, -1j], [1j, 0]])
        )

    def test_matrix_hermitian(self):
        p = Pauli.from_label("XYZI")
        m = p.to_matrix()
        assert np.allclose(m, m.conj().T)

    def test_copy_independent(self):
        p = Pauli.from_label("XX")
        q = p.copy()
        q.x[0] = False
        assert p.bare_label() == "XX"
