"""Parallel QSP: evaluating tr(P(rho)) by polynomial factorisation (Sec 6.4).

Splits a degree-4 polynomial into two degree-2 factors (the O(d/k) depth
reduction of [42]), applies each factor to its own copy of rho, and
assembles tr(P(rho)) with one ``Experiment.qsp`` run — the multi-party
SWAP test recombining the factors.

Run:  python examples/parallel_qsp.py
"""

import numpy as np

from repro import Experiment
from repro.apps import factor_polynomial, parallel_qsp_trace_exact
from repro.utils import random_density_matrix


def main() -> None:
    rng = np.random.default_rng(17)
    rho = random_density_matrix(1, rng=rng)
    coefficients = np.array([1.0, 0.0, 0.5, 0.0, 0.2])  # x^4 + 0.5 x^2 + 0.2
    print("target: tr(P(rho)) with P(x) = x^4 + 0.5 x^2 + 0.2")

    direct = float(np.sum(np.polyval(coefficients, np.linalg.eigvalsh(rho))))
    print(f"direct eigenvalue sum          = {direct:.4f}")

    for k in (1, 2):
        factored = factor_polynomial(coefficients, k)
        exact = parallel_qsp_trace_exact(rho, factored)
        degrees = [len(f) - 1 for f in factored.factors]
        print(
            f"k={k}: factor degrees {degrees} "
            f"(sequential depth proxy {factored.max_factor_degree}), "
            f"factored trace = {exact:.4f}"
        )

    result = Experiment.qsp(rho, coefficients, k=2, shots=20000, seed=3, variant="d").run()
    print(f"\nSWAP-test assembly (k=2):      = {result.estimate:.4f}  (exact {result.exact:.4f})")
    print("the multi-party SWAP test recombines the two half-degree factors,")
    print("halving the QSP circuit depth exactly as Sec 6.4 describes.")


if __name__ == "__main__":
    main()
