"""Measured resource accounting: per-QPU costs derived from built circuits.

:mod:`repro.resources.accounting` reproduces the paper's Tables 1-3 from
closed-form constants.  This module derives the same quantities by
**measurement**: it builds the actual protocol circuits
(:func:`repro.core.compas.build_compas`,
:func:`repro.core.naive.build_naive_distribution`), lowers them into
scheduled, QPU-attributed programs (:mod:`repro.network.lowering`), and
reads the counts off the lowering — so the tables and the circuits can be
cross-checked automatically.

Conventions (and where they differ from the closed forms):

* **Per-QPU Bell pairs** — the largest number of logical pairs any QPU is
  an endpoint of.  For the COMPAS designs this reproduces Tables 1-2
  exactly on an interior controller QPU (``2 + 4n`` teledata,
  ``2 + 6n`` telegate) once the machine is large enough to have one
  (``k >= 6``; smaller machines measure one GHZ link fewer).
* **Depth** — ASAP layers of the built circuit.  The builders' constants
  differ from the paper's hand-counted step constants, but the paper's
  structural claims survive measurement: depth is independent of ``n``
  and of ``k``, and teledata is shallower than telegate.
* **Naive physical pairs** — hop-weighted over the QPU graph.  The
  paper's Sec 2.5 formula counts qubit-granular line distances (one
  channel per adjacent qubit pair), so its ``O(n^2)`` constant is larger
  by ``~n/k``; the measured congestion signature is the same — the
  busiest *link* carries ``O(n k)`` physical pairs under naive
  redistribution versus ``O(n)`` for COMPAS's nearest-neighbour rounds.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.protocol import family_builds
from ..network.lowering import LoweredProgram
from ..network.topology import Topology

__all__ = ["MeasuredCost", "measure_scheme_cost", "measured_scheme_comparison"]

#: Schemes :func:`measure_scheme_cost` can build and lower.  The first
#: three are the original Tables 1-3 rows; the rest are the protocol
#: family's alternative estimators, measured through the same lowering.
SCHEMES = ("telegate", "teledata", "naive", "multistate", "nstate", "nparty")


@dataclass(frozen=True)
class MeasuredCost:
    """Per-QPU resource costs measured from one lowered protocol circuit."""

    scheme: str
    n: int
    k: int
    topology: str
    ancilla: int
    """Largest non-data qubit count on any QPU."""
    bell_pairs: int
    """Largest logical Bell-pair participation of any QPU (Tables 1-2 row)."""
    physical_bell_pairs: int
    """Largest hop-weighted physical-pair count touching any QPU."""
    total_logical_bells: int
    total_physical_bells: int
    max_link_load: int
    """Physical pairs crossing the busiest single link (congestion)."""
    depth: int
    latency: float
    """Makespan with Bell generations weighted by ``bell_latency * hops``."""
    per_qpu: dict

    def to_dict(self) -> dict:
        """JSON-safe row for reports and benchmark envelopes."""
        return {
            "scheme": self.scheme,
            "n": self.n,
            "k": self.k,
            "topology": self.topology,
            "ancilla": self.ancilla,
            "bell_pairs": self.bell_pairs,
            "physical_bell_pairs": self.physical_bell_pairs,
            "total_logical_bells": self.total_logical_bells,
            "total_physical_bells": self.total_physical_bells,
            "max_link_load": self.max_link_load,
            "depth": self.depth,
            "latency": self.latency,
        }


def _from_lowered(
    scheme: str,
    n: int,
    k: int,
    lowered: LoweredProgram,
    ledger,
    topology_name: str,
) -> MeasuredCost:
    max_link_load = max(ledger.physical_by_link.values(), default=0)
    return MeasuredCost(
        scheme=scheme,
        n=n,
        k=k,
        topology=topology_name,
        ancilla=lowered.max_qpu("ancilla"),
        bell_pairs=lowered.max_qpu("bell_pairs"),
        physical_bell_pairs=lowered.max_qpu("physical_bell_pairs"),
        total_logical_bells=lowered.logical_bells,
        total_physical_bells=lowered.physical_bells,
        max_link_load=max_link_load,
        depth=lowered.depth,
        latency=lowered.latency,
        per_qpu={name: usage.to_dict() for name, usage in lowered.per_qpu.items()},
    )


def measure_scheme_cost(
    scheme: str,
    n: int,
    k: int,
    topology: Topology | None = None,
    bell_latency: float = 1.0,
) -> MeasuredCost:
    """Build, lower, and measure one scheme's per-QPU costs.

    ``scheme`` is ``"telegate"`` / ``"teledata"`` (the COMPAS designs,
    Tables 1-2), ``"naive"`` (Sec 2.5 redistribution), or one of the
    protocol-family estimators (``"multistate"`` / ``"nstate"`` /
    ``"nparty"``).  ``topology`` defaults to the paper's line over
    ``qpu0 .. qpu{k-1}``.

    The multi-state scheme is a *sequential campaign* of ``C(k, 2)``
    pairwise circuits, and its row follows that semantics: consumables
    (Bell pairs, link load, depth, latency) accumulate across the
    campaign while reusable qubit counts take the per-QPU peak, and
    ``per_qpu`` nests one usage map per circuit.
    """
    if scheme not in SCHEMES:
        raise ValueError(f"scheme must be one of {SCHEMES}")
    member = f"compas-{scheme}" if scheme in ("telegate", "teledata") else scheme
    builds = family_builds(member, k, n, basis="x", topology=topology)
    topology_name = (
        builds[0].program.topology.name if builds[0].program.topology else "custom"
    )
    if len(builds) == 1:
        lowered = builds[0].lowered(bell_latency=bell_latency)
        return _from_lowered(scheme, n, k, lowered, builds[0].program.ledger, topology_name)

    lowereds = [build.lowered(bell_latency=bell_latency) for build in builds]
    bell_by_qpu: Counter = Counter()
    physical_by_qpu: Counter = Counter()
    link_load: Counter = Counter()
    for build, lowered in zip(builds, lowereds):
        for name, usage in lowered.per_qpu.items():
            bell_by_qpu[name] += usage.bell_pairs
            physical_by_qpu[name] += usage.physical_bell_pairs
        link_load.update(build.program.ledger.physical_by_link)
    return MeasuredCost(
        scheme=scheme,
        n=n,
        k=k,
        topology=topology_name,
        ancilla=max(lowered.max_qpu("ancilla") for lowered in lowereds),
        bell_pairs=max(bell_by_qpu.values(), default=0),
        physical_bell_pairs=max(physical_by_qpu.values(), default=0),
        total_logical_bells=sum(lowered.logical_bells for lowered in lowereds),
        total_physical_bells=sum(lowered.physical_bells for lowered in lowereds),
        max_link_load=max(link_load.values(), default=0),
        depth=sum(lowered.depth for lowered in lowereds),
        latency=sum(lowered.latency for lowered in lowereds),
        per_qpu={
            build.circuit_name(): {
                name: usage.to_dict() for name, usage in lowered.per_qpu.items()
            }
            for build, lowered in zip(builds, lowereds)
        },
    )


def measured_scheme_comparison(
    n: int,
    k: int,
    topology: Topology | None = None,
    bell_latency: float = 1.0,
    schemes: tuple[str, ...] | None = None,
) -> list[dict]:
    """The measured analogue of :func:`repro.resources.scheme_comparison`.

    One row per scheme (default: all of :data:`SCHEMES`, the Tables 1-3
    rows plus the protocol-family estimators), derived from the circuits
    we actually build; pair it with the closed-form table to cross-check
    scaling and constants.
    """
    return [
        measure_scheme_cost(
            scheme, n, k, topology=topology, bell_latency=bell_latency
        ).to_dict()
        for scheme in (schemes if schemes is not None else SCHEMES)
    ]
