"""Shared-memory outcome buffers: zero-copy ``(shots, num_clbits)`` matrices.

Aggregate paths (counts, parities) cross the pool boundary as tiny
reduced payloads, but the raw-outcome paths — exact/forced-outcome
cross-validation and any consumer that wants every shot's classical
register — must move a whole ``(shots, num_clbits)`` uint8 matrix out of
the workers.  Pickling that matrix through the result queue copies it at
least twice; a :class:`SharedOutcomeBuffer` instead maps one
``multiprocessing.shared_memory`` segment that the parent creates and
every worker writes its batch's rows into *in place* (row offsets are
derived from the deterministic batch partition, so writers never
overlap).

Lifetime is explicit, never garbage-collector-driven:

* the **creator** (the engine) owns the segment: ``close()`` both
  detaches and unlinks it;
* **workers** attach, write, and detach (``attach``/``close``); on
  POSIX Pythons that register attachments with the resource tracker the
  attach side immediately unregisters, so a worker's exit can never
  unlink a segment the parent still serves.

:class:`OutcomeMatrix` is the caller-facing wrapper: the same
``.array``/``.close()`` surface whether the matrix lives in shared
memory (pooled runs) or in a plain process-local array (serial and
thread runs), so consumers are executor-agnostic.
"""

from __future__ import annotations

from contextlib import contextmanager
from multiprocessing import shared_memory

import numpy as np

__all__ = ["OutcomeMatrix", "SharedOutcomeBuffer"]


@contextmanager
def _suppress_tracker_registration():
    """Keep an attach from registering with the resource tracker (POSIX).

    CPython < 3.13 registers *every* ``SharedMemory`` construction with
    the resource tracker; an attaching worker would then fight the
    creator over unlink responsibility (fork-started workers even share
    the parent's tracker process, so register/unregister pairs from
    concurrent workers race each other's cache entries).  Suppressing the
    registration during attach leaves the creator as the sole registrant
    — and the sole unlinker.  Each pool worker runs one task at a time,
    so the brief swap is process-safe where it is used.
    """
    try:  # pragma: no cover - platform/version dependent
        from multiprocessing import resource_tracker
    except ImportError:
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


class SharedOutcomeBuffer:
    """A ``(shots, num_clbits)`` uint8 matrix in a named shared segment."""

    def __init__(self, shm: shared_memory.SharedMemory, shots: int, num_clbits: int, owner: bool):
        self._shm = shm
        self.shots = shots
        self.num_clbits = num_clbits
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, shots: int, num_clbits: int) -> "SharedOutcomeBuffer":
        """Allocate (and own) a zero-initialised segment for the matrix."""
        if shots < 1:
            raise ValueError("need at least one shot")
        size = max(1, shots * num_clbits)
        shm = shared_memory.SharedMemory(create=True, size=size)
        buffer = cls(shm, shots, num_clbits, owner=True)
        if num_clbits:
            buffer.array.fill(0)
        return buffer

    @classmethod
    def attach(cls, name: str, shots: int, num_clbits: int) -> "SharedOutcomeBuffer":
        """Map an existing segment by name (worker side; non-owning)."""
        with _suppress_tracker_registration():
            shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shots, num_clbits, owner=False)

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    def spec(self) -> tuple[str, int, int]:
        """The picklable ``(name, shots, num_clbits)`` attach handle."""
        return (self.name, self.shots, self.num_clbits)

    @property
    def array(self) -> np.ndarray:
        """A writable ndarray view of the segment (no copy)."""
        if self._closed:
            raise ValueError("buffer is closed")
        return np.ndarray(
            (self.shots, self.num_clbits), dtype=np.uint8, buffer=self._shm.buf
        )

    def copy(self) -> np.ndarray:
        """A process-local copy that survives :meth:`close`."""
        return np.array(self.array, copy=True)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach; the owner also unlinks.  Idempotent.

        Any ndarray views obtained from :attr:`array` must be dropped (or
        copied) first — closing with live exports raises ``BufferError``
        rather than silently invalidating them.
        """
        if self._closed:
            return
        self._shm.close()
        if self.owner:
            self._shm.unlink()
        self._closed = True

    def __enter__(self) -> "SharedOutcomeBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class OutcomeMatrix:
    """Executor-agnostic handle to a full ``(shots, num_clbits)`` matrix.

    Backed either by a plain process-local array (serial/thread
    execution: ``close()`` is a no-op) or by a :class:`SharedOutcomeBuffer`
    the caller must ``close()`` — use it as a context manager, and call
    :meth:`copy` for data that must outlive the handle.
    """

    def __init__(self, array: np.ndarray, buffer: SharedOutcomeBuffer | None = None):
        self._array: np.ndarray | None = array
        self._buffer = buffer

    @property
    def shared(self) -> bool:
        """Whether the matrix lives in a shared-memory segment."""
        return self._buffer is not None

    @property
    def array(self) -> np.ndarray:
        """The (possibly shared) matrix; invalid after :meth:`close`."""
        if self._array is None:
            raise ValueError("outcome matrix is closed")
        return self._array

    def copy(self) -> np.ndarray:
        """A process-local copy that survives :meth:`close`."""
        return np.array(self.array, copy=True)

    def close(self) -> None:
        """Release the backing segment (idempotent)."""
        self._array = None
        if self._buffer is not None:
            buffer, self._buffer = self._buffer, None
            buffer.close()

    def __enter__(self) -> "OutcomeMatrix":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
