"""Simulators: statevector (per-shot reference + vectorized batch kernel),
density matrix, stabilizer tableau, Pauli frame — plus the circuit compiler
that lowers the IR into frozen, executable programs."""

from .batched import BatchRunResult, run_batched
from .compile import (
    CircuitCapabilities,
    CompiledProgram,
    analyze_circuit,
    compile_circuit,
    get_capabilities,
    get_compiled,
)
from .density import DensityResult, DensitySimulator
from .noisemodel import NoiseModel, QpuNoiseOverride, depolarizing_kraus
from .pauli import Pauli
from .pauliframe import FrameSample, PauliFrameSimulator
from .statevector import StatevectorSimulator, TrajectoryResult, simulate_statevector
from .tableau import TableauSimulator

__all__ = [
    "BatchRunResult",
    "run_batched",
    "CircuitCapabilities",
    "CompiledProgram",
    "analyze_circuit",
    "compile_circuit",
    "get_capabilities",
    "get_compiled",
    "DensityResult",
    "DensitySimulator",
    "NoiseModel",
    "QpuNoiseOverride",
    "depolarizing_kraus",
    "Pauli",
    "FrameSample",
    "PauliFrameSimulator",
    "StatevectorSimulator",
    "TrajectoryResult",
    "simulate_statevector",
    "TableauSimulator",
]
