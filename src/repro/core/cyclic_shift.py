"""Cyclic shift W_sigma and its two-round transposition decomposition.

The multi-party SWAP test measures the expectation of the cyclic-shift
unitary W_sigma on rho_1 x ... x rho_k (paper Eq. 3).  COMPAS implements the
controlled version of W_sigma as two rounds of *disjoint* controlled-SWAPs
between neighbours in the interleaved arrangement ``1, k, 2, k-1, ...``
(Sec 3.2 / Fig 5): a k-cycle is the product of two reflections of the k-gon,
and the interleaving maps both reflections onto nearest-neighbour
transpositions.  This module owns that combinatorics, plus exact
linear-algebra references used by every correctness test.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "interleaved_arrangement",
    "round_position_pairs",
    "induced_state_cycle",
    "permutation_unitary",
    "cyclic_shift_unitary",
    "multivariate_trace",
    "trace_order",
    "slot_assignment",
]


def interleaved_arrangement(k: int) -> list[int]:
    """Positions -> state indices in the order ``0, k-1, 1, k-2, 2, ...``.

    Example (k=6): ``[0, 5, 1, 4, 2, 3]`` — the paper's ``1, k, 2, k-1, ...``
    written 0-based.
    """
    if k < 1:
        raise ValueError("k must be positive")
    low, high = 0, k - 1
    out: list[int] = []
    while low <= high:
        out.append(low)
        if low != high:
            out.append(high)
        low += 1
        high -= 1
    return out


def round_position_pairs(k: int) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Adjacent position pairs swapped in rounds 1 and 2.

    Round 1 swaps positions (0,1), (2,3), ...; round 2 swaps (1,2), (3,4),
    ... — no wrap-around, giving k-1 transpositions total (Sec 5.4).
    """
    round1 = [(p, p + 1) for p in range(0, k - 1, 2)]
    round2 = [(p, p + 1) for p in range(1, k - 1, 2)]
    return round1, round2


def induced_state_cycle(k: int) -> list[int]:
    """Permutation on *state indices* realised by the two swap rounds.

    Returns ``perm`` with ``perm[i] = j`` meaning state i's slot content
    moves to where state j started; the result is always a single k-cycle.
    """
    arrangement = interleaved_arrangement(k)
    # position -> current state occupying it
    occupant = list(arrangement)
    round1, round2 = round_position_pairs(k)
    for a, b in round1:
        occupant[a], occupant[b] = occupant[b], occupant[a]
    for a, b in round2:
        occupant[a], occupant[b] = occupant[b], occupant[a]
    # State at position p moved from arrangement[p]'s slot to occupant[p]'s
    # slot; express as a mapping on state labels.
    perm = [0] * k
    for p in range(k):
        perm[occupant[p]] = arrangement[p]
    return perm


def trace_order(k: int) -> list[int]:
    """Slot ordering such that the rounds estimate tr(rho_{o0} rho_{o1} ...).

    For a factor permutation pi (factor i sent to slot pi(i)),
    ``tr(W_pi rho_0 x ... x rho_{k-1}) = tr(prod along the *inverse* cycle)``:
    with pi(i) = i+1 the estimated quantity is tr(rho_0 rho_{k-1} ... rho_1).
    """
    perm = induced_state_cycle(k)
    inverse = [0] * k
    for i, p in enumerate(perm):
        inverse[p] = i
    order = [0]
    while len(order) < k:
        order.append(inverse[order[-1]])
    return order


def slot_assignment(k: int) -> list[int]:
    """User-state index to load into each slot so the protocol estimates
    tr(rho_0 rho_1 ... rho_{k-1}) in the user's order.

    ``slot_assignment(k)[s]`` is the user index whose state is placed in
    slot s.  Derived by inverting :func:`trace_order`.
    """
    order = trace_order(k)
    assignment = [0] * k
    for position, slot in enumerate(order):
        assignment[slot] = position
    return assignment


def permutation_unitary(perm: Sequence[int], dims: Sequence[int]) -> np.ndarray:
    """Unitary permuting tensor factors: factor i is sent to slot perm[i].

    ``dims[i]`` is the dimension of factor i.  Acts as
    ``W |x_0, ..., x_{k-1}> = |y_0, ..., y_{k-1}>`` with ``y_{perm[i]} = x_i``.
    """
    perm = list(perm)
    k = len(perm)
    if sorted(perm) != list(range(k)) or len(dims) != k:
        raise ValueError("perm must be a permutation matching dims")
    total = int(np.prod(dims))
    matrix = np.zeros((total, total), dtype=complex)
    # Slot j receives factor inverse[j], so its dimension is dims[inverse[j]].
    inverse = [0] * k
    for i, p in enumerate(perm):
        inverse[p] = i
    out_dims = [dims[inverse[j]] for j in range(k)]
    for col in range(total):
        rem = col
        digits = []
        for d in reversed(dims):
            digits.append(rem % d)
            rem //= d
        digits.reverse()  # digits[i] = x_i
        out_digits = [0] * k
        for i in range(k):
            out_digits[perm[i]] = digits[i]
        row = 0
        for j in range(k):
            row = row * out_dims[j] + out_digits[j]
        matrix[row, col] = 1.0
    return matrix


def cyclic_shift_unitary(k: int, n: int) -> np.ndarray:
    """W for the permutation the COMPAS rounds induce, factors of n qubits."""
    perm = induced_state_cycle(k)
    return permutation_unitary(perm, [2**n] * k)


def multivariate_trace(states: Sequence[np.ndarray], order: Sequence[int] | None = None) -> complex:
    """Exact tr(prod states[order]) — the protocol's ground truth."""
    states = list(states)
    if order is None:
        order = range(len(states))
    product = None
    for index in order:
        product = states[index] if product is None else product @ states[index]
    if product is None:
        raise ValueError("need at least one state")
    return complex(np.trace(product))
