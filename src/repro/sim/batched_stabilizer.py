"""Compile-once / sample-many batched stabilizer kernel.

The per-shot :class:`~repro.sim.tableau.TableauSimulator` re-runs the full
O(n^2)-per-measurement CHP algorithm for every shot, and the dense batched
kernel pays O(shots * 2**n) amplitudes per gate.  For the paper's Clifford
workloads (GHZ distribution, constant-depth fanout, teleportation frames)
neither is necessary: one **reference tableau pass** over the circuit fixes
every deterministic measurement outcome and identifies the random-measurement
sites, and all per-shot variation — measurement randomness, Pauli gate
faults, hop-weighted link faults, readout flips, reset, parity-conditioned
Pauli feedback — propagates as packed ``(shots, n)`` X/Z deviation frames
under numpy bitwise ops.  Total cost: O(gates * n^2) once at compile time
plus O(shots * n) per gate at sampling time, which scales to hundreds of
qubits.

This is the sampling strategy Stim introduced (Gidney, Quantum 5, 497):

* the reference pass forces every random measurement to outcome 0 (the
  determinism structure of stabilizer measurements depends only on the X/Z
  parts of the tableau, never on the sign column, so forcing signs cannot
  change which later sites are random);
* each shot's deviation from the reference is a Pauli frame; Clifford gates
  conjugate it column-wise, measurement records flip where the frame has X
  support;
* measurement randomness comes from **frame randomization**: ``|0..0>`` is
  Z-stabilized, so seeding each shot's frame with a uniformly random Z on
  every qubit (and re-randomizing Z after every measurement and reset) is
  physically undetectable at deterministic sites — the injected operator is
  always an element of the instantaneous stabilizer group — while at random
  sites it makes the recorded bit a fair coin, exactly the Born rule;
* a Pauli correction conditioned on a parity of classical bits diverges
  between the noisy and ideal runs exactly when the parity of the record
  *deviations* is odd, in which case the correction Pauli joins the frame
  (paper Sec 5.1's effective-error calculus).

Programs are cached per process by circuit content digest
(:func:`get_stabilizer`), and the warm-worker protocol can ship a parent's
program to pool workers (:func:`prime_stabilizer`), mirroring
:mod:`repro.sim.compile` for the dense kernel.

Two entry points share the propagation/fault machinery:

* :func:`run_batched_stabilizer` — ``mode="sample"`` semantics: absolute
  classical registers (reference bits XOR per-shot deviations), matching the
  dense kernel's output distribution-for-distribution;
* :func:`run_batched_frames` — ``mode="frames"`` semantics: deviation-only
  frames over a raw circuit, vectorizing
  :meth:`repro.sim.pauliframe.PauliFrameSimulator.sample` shot loops
  (same fault model, including its unconditional noise draw at conditioned
  Pauli sites, so the per-shot API remains a valid cross-check reference).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from threading import Lock

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import GATES
from .noisemodel import NoiseModel
from .tableau import TableauSimulator

__all__ = [
    "StabilizerOp",
    "StabilizerProgram",
    "StabilizerRunResult",
    "compile_stabilizer",
    "get_stabilizer",
    "prime_stabilizer",
    "run_batched_frames",
    "run_batched_stabilizer",
    "stabilizer_cache_stats",
    "clear_stabilizer_cache",
]

#: Gate names the tableau reference pass (and frame conjugation) supports.
_CLIFFORD_GATES = frozenset(
    name for name, spec in GATES.items() if spec.clifford
)

_PAULI_FEEDBACK = ("x", "y", "z")


@dataclass(frozen=True)
class StabilizerOp:
    """One executable step of a stabilizer program.

    ``kind`` is ``"gate"``, ``"measure"``, or ``"reset"``.  The reference
    pass bakes its per-site results in at compile time: ``random`` marks a
    measurement/reset whose outcome is not determined by the stabilizer
    group (the reference forces it to 0), ``ref_outcome`` is the reference
    outcome actually taken, and ``ref_fires`` records whether a conditioned
    Pauli fired in the reference run.  ``qpu``/``hops`` are the site tags
    heterogeneous noise and link faults resolve through.
    """

    kind: str
    name: str
    qubits: tuple[int, ...]
    clbit: int = -1
    cond_clbits: tuple[int, ...] | None = None
    cond_value: int = 1
    qpu: str | None = None
    hops: int = 0
    random: bool = False
    ref_outcome: int = 0
    ref_fires: bool = False


@dataclass(frozen=True)
class StabilizerProgram:
    """A frozen Clifford circuit lowering plus its reference-pass results.

    The reference pass runs exactly once, at compile time; sampling any
    number of shots afterwards touches only the packed frame matrices.
    Picklable by construction so the warm-worker protocol can ship it.
    """

    num_qubits: int
    num_clbits: int
    ops: tuple[StabilizerOp, ...]
    ref_clbits: tuple[int, ...]
    num_random_sites: int
    source_ops: int


@dataclass
class StabilizerRunResult:
    """Outcome of one batched stabilizer invocation (sample semantics)."""

    clbits: np.ndarray
    """(shots, num_clbits) uint8 matrix of final classical registers."""


def compile_stabilizer(circuit: Circuit) -> StabilizerProgram:
    """Lower a Clifford circuit and run its reference tableau pass.

    Raises :class:`ValueError` when the circuit leaves the kernel's
    contract: non-Clifford gates, non-Pauli classical feedback, or
    conditioned measure/reset (the frame formalism requires the noisy and
    ideal runs to execute the same collapse sites).

    The reference pass is RNG-free: random measurement sites are forced to
    outcome 0 (see the module docstring for why that is sound) and resets
    collapse through the same forced path, so compiling never consumes
    entropy and the program is a pure function of the circuit.
    """
    n = circuit.num_qubits
    sim = TableauSimulator(n)
    ref_clbits = [0] * circuit.num_clbits
    ops: list[StabilizerOp] = []
    num_random = 0
    source_ops = 0

    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        source_ops += 1
        if inst.name in ("measure", "reset"):
            if inst.condition is not None:
                raise ValueError(
                    "conditioned measure/reset makes the collapse structure "
                    "shot-dependent; the stabilizer kernel cannot serve it"
                )
            q = inst.qubits[0]
            random = bool(np.any(sim.x[n : 2 * n, q]))
            outcome, _ = sim.measure(q, forced=0 if random else None)
            if inst.name == "reset":
                if outcome == 1:
                    sim.x_gate(q)
                ops.append(
                    StabilizerOp(
                        kind="reset",
                        name="reset",
                        qubits=(q,),
                        random=random,
                        ref_outcome=outcome,
                    )
                )
            else:
                ref_clbits[inst.clbits[0]] = outcome
                ops.append(
                    StabilizerOp(
                        kind="measure",
                        name="measure",
                        qubits=(q,),
                        clbit=inst.clbits[0],
                        qpu=inst.qpu,
                        random=random,
                        ref_outcome=outcome,
                    )
                )
            if random:
                num_random += 1
            continue
        if inst.name not in _CLIFFORD_GATES:
            raise ValueError(
                f"non-Clifford gate {inst.name!r}; the stabilizer kernel "
                "handles the Clifford fragment only"
            )
        if inst.condition is not None:
            if inst.name not in _PAULI_FEEDBACK:
                raise ValueError(
                    f"conditioned gate {inst.name!r} is not a Pauli; "
                    "frame propagation is undefined for it"
                )
            fires = inst.condition.evaluate(ref_clbits)
            if fires:
                _apply_reference_gate(sim, inst.name, inst.qubits)
            ops.append(
                StabilizerOp(
                    kind="gate",
                    name=inst.name,
                    qubits=inst.qubits,
                    cond_clbits=inst.condition.clbits,
                    cond_value=inst.condition.value,
                    qpu=inst.qpu,
                    hops=inst.hops,
                    ref_fires=fires,
                )
            )
            continue
        _apply_reference_gate(sim, inst.name, inst.qubits)
        ops.append(
            StabilizerOp(
                kind="gate",
                name=inst.name,
                qubits=inst.qubits,
                qpu=inst.qpu,
                hops=inst.hops,
            )
        )

    return StabilizerProgram(
        num_qubits=n,
        num_clbits=circuit.num_clbits,
        ops=tuple(ops),
        ref_clbits=tuple(ref_clbits),
        num_random_sites=num_random,
        source_ops=source_ops,
    )


_REFERENCE_DISPATCH = {
    "h": "h",
    "s": "s",
    "sdg": "sdg",
    "x": "x_gate",
    "y": "y_gate",
    "z": "z_gate",
    "cx": "cx",
    "cz": "cz",
    "swap": "swap",
}


def _apply_reference_gate(sim: TableauSimulator, name: str, qubits: tuple[int, ...]) -> None:
    if name == "id":
        return
    method = _REFERENCE_DISPATCH.get(name)
    if method is None:  # pragma: no cover - guarded by the Clifford check
        raise ValueError(f"gate {name!r} has no tableau lowering")
    getattr(sim, method)(*qubits)


# ----------------------------------------------------------------------
# Per-process program cache (mirrors sim.compile's compiled-program cache)
# ----------------------------------------------------------------------
_CACHE_MAX = 256
_program_cache: OrderedDict[bytes, StabilizerProgram] = OrderedDict()
_cache_lock = Lock()
_stats = {"compiles": 0, "hits": 0, "primed": 0, "compile_time": 0.0}


def get_stabilizer(circuit: Circuit) -> StabilizerProgram:
    """Compile-once accessor, keyed by the circuit's content digest.

    The program embeds no noise information — fault sites resolve their
    rates at run time from the job's :class:`NoiseModel` — so one cache
    entry serves every noise configuration of a circuit.
    """
    key = circuit.content_digest()
    with _cache_lock:
        program = _program_cache.get(key)
        if program is not None:
            _program_cache.move_to_end(key)
            _stats["hits"] += 1
            return program
    start = time.perf_counter()
    program = compile_stabilizer(circuit)
    elapsed = time.perf_counter() - start
    with _cache_lock:
        _stats["compiles"] += 1
        _stats["compile_time"] += elapsed
        _program_cache[key] = program
        while len(_program_cache) > _CACHE_MAX:
            _program_cache.popitem(last=False)
    return program


def prime_stabilizer(circuit: Circuit, program: StabilizerProgram) -> bool:
    """Seed the cache with a program compiled by another process.

    Same contract as :func:`repro.sim.compile.prime_compiled`: the key is
    re-derived from the circuit, the resident entry wins, and the return
    value says whether this call inserted anything.
    """
    key = circuit.content_digest()
    with _cache_lock:
        if key in _program_cache:
            _program_cache.move_to_end(key)
            return False
        _stats["primed"] += 1
        _program_cache[key] = program
        while len(_program_cache) > _CACHE_MAX:
            _program_cache.popitem(last=False)
    return True


def stabilizer_cache_stats() -> dict:
    """Snapshot of the process-wide stabilizer compile counters."""
    with _cache_lock:
        return dict(_stats, cached_programs=len(_program_cache))


def clear_stabilizer_cache() -> None:
    """Drop all cached programs and reset counters (tests only)."""
    with _cache_lock:
        _program_cache.clear()
        _stats.update({"compiles": 0, "hits": 0, "primed": 0, "compile_time": 0.0})


# ----------------------------------------------------------------------
# Sampling (mode="sample"): reference bits XOR propagated deviations
# ----------------------------------------------------------------------
def run_batched_stabilizer(
    program: StabilizerProgram,
    shots: int,
    rng: np.random.Generator,
    *,
    noise: NoiseModel | None = None,
) -> StabilizerRunResult:
    """Sample ``shots`` classical registers of a compiled Clifford circuit.

    Every shot starts on the computational basis state ``|0..0>``.  The
    noise model may carry gate depolarizing, readout flips, and
    hop-weighted link faults — all Pauli channels, which is every channel
    a :class:`NoiseModel` can express — or be ``None``/noiseless for pure
    measurement sampling.

    RNG consumption is a fixed function of ``(program, noise flags)``:
    frame seeding, one draw block per stochastic site in program order.
    Results therefore depend only on the generator handed in, never on
    worker count or batch interleaving (the engine's determinism
    contract).
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    if noise is not None and noise.is_noiseless:
        noise = None
    n = program.num_qubits
    gate_noise = noise is not None and noise.has_gate_noise
    link_noise = noise is not None and noise.has_link_noise

    fx = np.zeros((shots, n), dtype=bool)
    # |0..0> is stabilized by every Z, so a uniformly random Z frame per
    # qubit is invisible now and supplies the Born-rule coin at whatever
    # random measurement sites the circuit reaches (module docstring).
    fz = rng.random((shots, n)) < 0.5
    flips = np.zeros((shots, program.num_clbits), dtype=bool)

    for op in program.ops:
        if op.kind == "measure":
            q = op.qubits[0]
            column = fx[:, q].copy()
            rate = noise.meas_flip_rate(op.qpu) if noise is not None else 0.0
            if rate > 0.0:
                column ^= rng.random(shots) < rate
            flips[:, op.clbit] = column
            fz[:, q] = rng.random(shots) < 0.5
            continue
        if op.kind == "reset":
            # Both the reference and every shot re-prepare |0> here, so the
            # X deviation dies; Z is re-randomized like after a measurement.
            q = op.qubits[0]
            fx[:, q] = False
            fz[:, q] = rng.random(shots) < 0.5
            continue
        if op.cond_clbits is not None:
            odd = _flip_parity(flips, op.cond_clbits)
            q = op.qubits[0]
            if op.name in ("x", "y"):
                fx[:, q] ^= odd
            if op.name in ("y", "z"):
                fz[:, q] ^= odd
            # Faults fire only on shots that physically execute the gate
            # (reference firing XOR deviation parity), matching the dense
            # kernel's conditioned-site semantics.
            if gate_noise or (link_noise and op.hops):
                fires = odd ^ op.ref_fires
                if gate_noise:
                    _inject_frame_faults(
                        fx, fz, fires, op.qubits,
                        noise.gate_error_rate(len(op.qubits), op.qpu), rng,
                    )
                if link_noise and op.hops:
                    _inject_frame_faults(
                        fx, fz, fires, op.qubits,
                        noise.link_error_rate(op.hops), rng,
                    )
            continue
        _conjugate_frames(op.name, op.qubits, fx, fz)
        if gate_noise:
            _inject_frame_faults(
                fx, fz, None, op.qubits,
                noise.gate_error_rate(len(op.qubits), op.qpu), rng,
            )
        if link_noise and op.hops:
            _inject_frame_faults(
                fx, fz, None, op.qubits, noise.link_error_rate(op.hops), rng
            )

    if program.num_clbits:
        ref = np.asarray(program.ref_clbits, dtype=np.uint8)
        clbits = ref[None, :] ^ flips.astype(np.uint8)
    else:
        clbits = np.zeros((shots, 0), dtype=np.uint8)
    return StabilizerRunResult(clbits=clbits)


# ----------------------------------------------------------------------
# Frames mode: deviation-only sampling over a raw circuit
# ----------------------------------------------------------------------
def run_batched_frames(
    circuit: Circuit,
    noise: NoiseModel,
    shots: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorize ``shots`` Pauli-frame walks of a noisy Clifford circuit.

    Semantics match :meth:`repro.sim.pauliframe.PauliFrameSimulator.sample`
    exactly — deviation-only frames, no measurement-outcome randomization,
    reset clears the frame, and the noise draw at a conditioned Pauli site
    is unconditional — so the per-shot API remains the cross-check
    reference.  Only the RNG *consumption order* differs (one vectorized
    draw per site instead of one scalar draw per shot per site), so equal
    seeds give different, equally valid samples of the same distribution.

    Returns ``(fx, fz, flips)``: the final ``(shots, n)`` X/Z frame
    matrices and the ``(shots, num_clbits)`` record-deviation matrix.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    n = circuit.num_qubits
    fx = np.zeros((shots, n), dtype=bool)
    fz = np.zeros((shots, n), dtype=bool)
    flips = np.zeros((shots, circuit.num_clbits), dtype=bool)
    gate_noise = noise.has_gate_noise
    link_noise = noise.has_link_noise

    for inst in circuit.instructions:
        name = inst.name
        if name == "barrier":
            continue
        if name == "measure":
            q = inst.qubits[0]
            column = fx[:, q].copy()
            rate = noise.meas_flip_rate(inst.qpu)
            if rate > 0.0:
                column ^= rng.random(shots) < rate
            flips[:, inst.clbits[0]] = column
            # The Z component on a measured qubit is unobservable and the
            # post-measurement state is an eigenstate, so clear it.
            fz[:, q] = False
            continue
        if name == "reset":
            fx[:, inst.qubits[0]] = False
            fz[:, inst.qubits[0]] = False
            continue
        if inst.condition is not None:
            odd = _flip_parity(flips, inst.condition.clbits)
            q = inst.qubits[0]
            if name in ("x", "y"):
                fx[:, q] ^= odd
            if name in ("y", "z"):
                fz[:, q] ^= odd
        else:
            _conjugate_frames(name, inst.qubits, fx, fz)
        # Per-shot reference injects gate noise at every gate site —
        # conditioned Paulis included, unconditionally — then the link
        # fault; keep that exact fault model here.
        if gate_noise:
            _inject_frame_faults(
                fx, fz, None, inst.qubits,
                noise.gate_error_rate(len(inst.qubits), inst.qpu), rng,
            )
        if link_noise and inst.hops:
            _inject_frame_faults(
                fx, fz, None, inst.qubits, noise.link_error_rate(inst.hops), rng
            )
    return fx, fz, flips


# ----------------------------------------------------------------------
# Shared frame machinery
# ----------------------------------------------------------------------
def _flip_parity(flips: np.ndarray, clbits: tuple[int, ...]) -> np.ndarray:
    """Per-shot XOR of the selected record-deviation columns."""
    acc = flips[:, clbits[0]].copy()
    for c in clbits[1:]:
        acc ^= flips[:, c]
    return acc


def _conjugate_frames(
    name: str, qubits: tuple[int, ...], fx: np.ndarray, fz: np.ndarray
) -> None:
    """Conjugate every shot's frame through one Clifford gate, in place.

    Paulis commute with any Pauli frame up to a global phase frames do not
    track, so they are no-ops here (their effect on *reference* outcomes
    lives in the compile-time tableau pass).
    """
    if name in ("x", "y", "z", "id"):
        return
    if name == "h":
        q = qubits[0]
        tmp = fx[:, q].copy()
        fx[:, q] = fz[:, q]
        fz[:, q] = tmp
        return
    if name in ("s", "sdg"):
        q = qubits[0]
        fz[:, q] ^= fx[:, q]
        return
    if name == "cx":
        c, t = qubits
        fx[:, t] ^= fx[:, c]
        fz[:, c] ^= fz[:, t]
        return
    if name == "cz":
        a, b = qubits
        fz[:, b] ^= fx[:, a]
        fz[:, a] ^= fx[:, b]
        return
    if name == "swap":
        a, b = qubits
        tmp = fx[:, a].copy()
        fx[:, a] = fx[:, b]
        fx[:, b] = tmp
        tmp = fz[:, a].copy()
        fz[:, a] = fz[:, b]
        fz[:, b] = tmp
        return
    raise AssertionError(f"unreachable gate {name!r}")


def _inject_frame_faults(
    fx: np.ndarray,
    fz: np.ndarray,
    mask: np.ndarray | None,
    qubits: tuple[int, ...],
    rate: float,
    rng: np.random.Generator,
) -> None:
    """One depolarizing draw over all shots, XORed into the frames.

    Draws the firing vector for the whole batch (a fixed-size draw keeps
    RNG consumption independent of ``mask``), then one uniform
    non-identity Pauli word per firing shot — the same ``[1, 4**k)``
    encoding as the dense kernel's ``_inject_faults`` — and XORs each
    word's X/Z bits into the firing shots' frame columns.
    """
    if rate <= 0.0:
        return
    fires = rng.random(fx.shape[0]) < rate
    if mask is not None:
        fires &= mask
    hit = np.nonzero(fires)[0]
    if hit.size == 0:
        return
    k = len(qubits)
    words = rng.integers(1, 4**k, size=hit.size)
    for i, q in enumerate(qubits):
        w = (words >> (2 * (k - 1 - i))) & 3
        # Word digits follow _PAULI_NAMES: 1 -> X, 2 -> Y, 3 -> Z.
        fx[hit, q] ^= (w == 1) | (w == 2)
        fz[hit, q] ^= (w == 2) | (w == 3)
