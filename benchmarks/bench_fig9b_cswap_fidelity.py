"""Figure 9b: classical fidelity of the two-party CSWAP designs (Sec 5.2).

Regenerates fidelity vs state width n for teledata and telegate at p2q in
{0.001, 0.003, 0.005}, using the paper's methodology: basis-state inputs
(exhaustive below 300, sampled above), shot-based blackboxed simulation.
Expected shape: decreasing in n, sharper at larger p2q, teledata edging out
telegate on average.
"""

import numpy as np
from conftest import FULL_SCALE, emit

from repro.analysis import PrimitiveErrorModel, cswap_classical_fidelity
from repro.reporting import Figure

NS = [1, 2, 3, 4, 5] if FULL_SCALE else [1, 2, 3]
SHOTS_PER_INPUT = 40 if FULL_SCALE else 8
MAX_INPUTS = 300 if FULL_SCALE else 24
PRIMITIVE_SHOTS = 20_000 if FULL_SCALE else 4_000


def test_fig9b_cswap_fidelity(once):
    figure = Figure(
        "Figure 9b — CSWAP classical fidelity vs target width",
        "state width n",
        "classical fidelity",
    )

    def run():
        out = {}
        for p in (0.001, 0.003, 0.005):
            model = PrimitiveErrorModel(p, shots=PRIMITIVE_SHOTS, seed=17)
            for design in ("teledata", "telegate"):
                for n in NS:
                    result = cswap_classical_fidelity(
                        design,
                        n,
                        p,
                        shots_per_input=SHOTS_PER_INPUT,
                        max_inputs=MAX_INPUTS,
                        seed=29,
                        model=model,
                    )
                    out[(design, p, n)] = result.fidelity
        return out

    results = once(run)
    for design in ("teledata", "telegate"):
        for p in (0.001, 0.003, 0.005):
            series = figure.new_series(f"{design} p2q={p}")
            for n in NS:
                series.add(n, results[(design, p, n)])
    emit("fig9b_cswap_fidelity", figure)

    # Shape: decreasing in n at the highest noise level for both designs.
    for design in ("teledata", "telegate"):
        assert results[(design, 0.005, NS[-1])] < results[(design, 0.005, NS[0])]
    # Noise ordering at fixed n.
    assert results[("teledata", 0.005, 2)] <= results[("teledata", 0.001, 2)]
    # The two designs stay within a few percent (paper: ~0.84% mean gap).
    gaps = [
        results[("teledata", p, n)] - results[("telegate", p, n)]
        for p in (0.001, 0.003, 0.005)
        for n in NS
    ]
    assert abs(float(np.mean(gaps))) < 0.08
