"""Virtual cooling and virtual distillation (paper Sec 6.3).

Both applications evaluate expectation values in the multiplicative product
state chi = rho^m / tr(rho^m) without ever preparing it:

    <O>_chi = tr(O rho^m) / tr(rho^m)                      (Eq. 10/11)

* **virtual cooling**: rho thermal at inverse temperature beta -> chi is
  thermal at m*beta (Eq. 12) — properties of colder states from hot copies.
* **virtual distillation**: rho a noisy approximation of a pure target ->
  chi converges exponentially (in m) to the dominant eigenvector, mitigating
  errors [26].

The numerator is the multi-party SWAP test with a GHZ-controlled Pauli
observable inserted (Sec 6.3); the denominator is the plain test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import Engine
from ..sim.pauli import Pauli

__all__ = [
    "VirtualExpectationResult",
    "virtual_expectation_exact",
    "virtual_expectation",
    "cooling_schedule_exact",
    "distillation_error_exact",
]


@dataclass
class VirtualExpectationResult:
    """<O>_chi estimate with its building blocks."""

    observable: str
    copies: int
    numerator: complex
    denominator: complex
    value: float
    seed: int | None = None
    """The recorded top-level seed the two test sub-seeds derive from."""

    @property
    def mitigated_expectation(self) -> float:
        """Alias used in the distillation context."""
        return self.value


def _observable_matrix(label: str) -> np.ndarray:
    return Pauli.from_label(label).to_matrix()


def virtual_expectation_exact(rho: np.ndarray, observable: str, copies: int) -> float:
    """Exact tr(O rho^m)/tr(rho^m) for a Pauli-string observable."""
    if copies < 1:
        raise ValueError("need at least one copy")
    rho = np.asarray(rho, dtype=complex)
    power = np.linalg.matrix_power(rho, copies)
    numerator = np.trace(_observable_matrix(observable) @ power)
    denominator = np.trace(power)
    return float(np.real(numerator / denominator))


def virtual_expectation(
    rho: np.ndarray,
    observable: str,
    copies: int,
    *,
    shots: int = 30000,
    seed: int | None = None,
    exact_circuit: bool = False,
    variant: str = "d",
    engine: Engine | None = None,
) -> VirtualExpectationResult:
    """Estimate <O>_chi with two SWAP tests (numerator and denominator).

    .. deprecated:: 1.1
        Thin wrapper over ``Experiment.virtual(...).run(engine)``; use
        :class:`repro.api.Experiment` directly.  Results are bit-identical
        at the same integer seed; ``seed=None`` draws a fresh seed
        recorded on ``result.seed``.
    """
    from ..api import Experiment
    from ..api.deprecation import warn_legacy

    warn_legacy("virtual_expectation()", "Experiment.virtual(...).run()")
    return (
        Experiment.virtual(
            rho,
            observable,
            copies,
            shots=shots,
            seed=seed,
            exact_circuit=exact_circuit,
            variant=variant,
        )
        .run(engine=engine)
        .raw
    )


def cooling_schedule_exact(
    hamiltonian: np.ndarray, beta: float, copies_list: list[int]
) -> list[tuple[int, float]]:
    """Exact <H>_chi for chi = rho^m at each m — the virtual cooling curve.

    rho is thermal at beta, so chi is thermal at m*beta (Eq. 12) and the
    energies must decrease monotonically towards the ground state.
    """
    from ..utils.states import thermal_state

    rho = thermal_state(hamiltonian, beta)
    curve = []
    for m in copies_list:
        power = np.linalg.matrix_power(rho, m)
        energy = float(np.real(np.trace(hamiltonian @ power) / np.trace(power)))
        curve.append((m, energy))
    return curve


def distillation_error_exact(
    target: np.ndarray, noisy: np.ndarray, observable: str, copies_list: list[int]
) -> list[tuple[int, float]]:
    """|<O>_chi - <O>_target| vs copy count — the mitigation curve."""
    obs = _observable_matrix(observable)
    ideal = float(np.real(np.vdot(target, obs @ target)))
    curve = []
    for m in copies_list:
        value = virtual_expectation_exact(noisy, observable, m)
        curve.append((m, abs(value - ideal)))
    return curve
