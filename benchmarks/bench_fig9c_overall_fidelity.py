"""Figure 9c: overall COMPAS fidelity estimate (Sec 5.4).

Regenerates F = (1 - p_GHZ(ceil(k/2))) (1 - p_CSWAP(n))^(k-1) vs n for
k in {8, 12} and p2q in {0.001, 0.003, 0.005}, both designs.  Expected
shape: fidelity decreasing in n, k, and p2q; teledata slightly ahead.
"""

from conftest import FULL_SCALE, emit

from repro.analysis import (
    PrimitiveErrorModel,
    cswap_classical_fidelity,
    ghz_fidelity_frames,
)
from repro.reporting import Figure

NS = list(range(1, 6)) if FULL_SCALE else [1, 2, 3]
KS = (8, 12)
GHZ_SHOTS = 50_000 if FULL_SCALE else 5_000
SHOTS_PER_INPUT = 30 if FULL_SCALE else 6
MAX_INPUTS = 300 if FULL_SCALE else 16
PRIMITIVE_SHOTS = 20_000 if FULL_SCALE else 3_000


def test_fig9c_overall_fidelity(once):
    figure = Figure(
        "Figure 9c — overall fidelity estimate", "state width n", "fidelity"
    )

    def run():
        curves = {}
        for p in (0.001, 0.003, 0.005):
            model = PrimitiveErrorModel(p, shots=PRIMITIVE_SHOTS, seed=5)
            ghz_error = {
                k: 1.0 - ghz_fidelity_frames((k + 1) // 2, p, shots=GHZ_SHOTS, seed=6)
                for k in KS
            }
            for design in ("teledata", "telegate"):
                cswap_error = {
                    n: 1.0
                    - cswap_classical_fidelity(
                        design,
                        n,
                        p,
                        shots_per_input=SHOTS_PER_INPUT,
                        max_inputs=MAX_INPUTS,
                        seed=7,
                        model=model,
                    ).fidelity
                    for n in NS
                }
                for k in KS:
                    curves[(design, p, k)] = [
                        max(
                            (1 - ghz_error[k]) * (1 - cswap_error[n]) ** (k - 1),
                            0.0,
                        )
                        for n in NS
                    ]
        return curves

    curves = once(run)
    for (design, p, k), values in sorted(curves.items()):
        series = figure.new_series(f"{design} p2q={p} k={k}")
        for n, f in zip(NS, values):
            series.add(n, f)
    emit("fig9c_overall_fidelity", figure)

    # Shape: decreasing in n; k=12 below k=8; higher p lower fidelity.
    for design in ("teledata", "telegate"):
        curve = curves[(design, 0.005, 8)]
        assert curve[-1] < curve[0]
        assert curves[(design, 0.003, 12)][0] < curves[(design, 0.003, 8)][0] + 0.02
        assert curves[(design, 0.005, 8)][0] < curves[(design, 0.001, 8)][0]
