"""Result cache keyed on job content hashes.

Two tiers: a process-local dict and an optional on-disk JSON store (one file
per job hash).  A disk hit is promoted into memory.  Because the job hash
covers circuit, shots, seed, noise, inputs, and the batch partition, a cache
hit is byte-for-byte the result the engine would have recomputed.

Disk entries are written atomically (temp file + ``os.replace`` in the same
directory), so an interrupted run can never leave a truncated JSON file
behind.  Entries that are nevertheless unreadable or corrupt (partial writes
from pre-atomic versions, disk faults, schema drift) are treated as misses:
the bad file is deleted, the ``corrupt`` counter incremented, and the job
recomputed and re-stored.

Bounds: ``max_entries`` caps the number of distinct results retained and
``max_bytes`` caps the on-disk footprint.  Both evict least-recently-used
entries (every ``get``/``put`` refreshes recency; a pre-existing directory
is seeded in file-mtime order), count each eviction in
``CacheStats.evictions``, and remove the entry from *both* tiers so the
cache never reports containing a result it has dropped.  Unbounded by
default — exactly the historical behaviour — but a long-running service
should always set bounds: the disk store otherwise grows forever.

The cache is thread-safe: a single reentrant lock serialises lookups,
stores, and eviction, so one instance can back many concurrent engine
calls (the multi-tenant service shares one warm cache across all
tenants).
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from ..obs.runtime import NOOP
from ..utils.jsonio import atomic_write_json, load_json_or_discard
from .job import JobResult

_log = logging.getLogger("repro.engine.cache")

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache instance.

    Hits are split by tier — ``hits_memory`` (process-local dict) vs
    ``hits_disk`` (JSON store) — so a warm-cache run is distinguishable
    from a cold one that merely found its files on disk.  ``hits`` stays
    available as the sum for envelope compatibility.  ``corrupt`` counts
    disk entries that could not be read back and were discarded;
    ``evictions`` counts entries dropped to honour ``max_entries`` /
    ``max_bytes``.

    The counters carry their own lock: mutation goes through :meth:`bump`
    and reporting through :meth:`snapshot`/:meth:`to_dict`, so readers on
    other threads (the service's stats endpoints, while pool callback
    threads store results) always see a consistent multi-field state and
    writers never depend on the caller holding the cache's lock.
    """

    hits_memory: int = 0
    hits_disk: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    def bump(self, counter: str, amount: int = 1) -> None:
        """Atomically increment one named counter."""
        with self._lock:
            setattr(self, counter, getattr(self, counter) + amount)

    def snapshot(self) -> "CacheStats":
        """A consistent point-in-time copy (its own independent lock)."""
        with self._lock:
            return CacheStats(
                hits_memory=self.hits_memory,
                hits_disk=self.hits_disk,
                misses=self.misses,
                stores=self.stores,
                corrupt=self.corrupt,
                evictions=self.evictions,
            )

    @property
    def hits(self) -> int:
        """Total lookups served from cache (memory + disk)."""
        return self.hits_memory + self.hits_disk

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-safe dict (``hits`` remains the tier sum).

        ``hit_rate`` is serialized too, so persisted envelopes can report
        it without recomputing from the raw counters.  Built from one
        consistent snapshot, never from counters mid-update.
        """
        snap = self.snapshot()
        return {
            "hits": snap.hits,
            "hits_memory": snap.hits_memory,
            "hits_disk": snap.hits_disk,
            "misses": snap.misses,
            "stores": snap.stores,
            "corrupt": snap.corrupt,
            "evictions": snap.evictions,
            "hit_rate": snap.hit_rate,
        }


class ResultCache:
    """In-memory + optional on-disk store of :class:`JobResult` by job hash.

    ``max_entries`` / ``max_bytes`` bound the store with LRU eviction (see
    the module docstring); ``None`` means unbounded.  ``obs``
    (engine-propagated, default no-op) records one ``cache.lookup`` span
    per :meth:`get` tagged with its outcome — ``memory-hit``,
    ``disk-hit``, ``miss``, or ``corrupt`` — and matching per-outcome
    counters, so run reports show the hit rate by tier.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None for unbounded)")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.directory = Path(directory) if directory is not None else None
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._memory: dict[str, JobResult] = {}
        #: LRU bookkeeping: key -> on-disk size in bytes (0 for memory-only
        #: entries), least-recently-used first.  Maintained only when a
        #: bound is set — the unbounded cache pays nothing for it.
        self._lru: OrderedDict[str, int] = OrderedDict()
        self._disk_bytes = 0
        self._lock = threading.RLock()
        self.stats = CacheStats()
        self.obs = NOOP
        if self.bounded and self.directory is not None:
            self._seed_lru()

    @property
    def bounded(self) -> bool:
        """Whether any size bound (and therefore LRU tracking) is active."""
        return self.max_entries is not None or self.max_bytes is not None

    # ------------------------------------------------------------------
    def get(self, key: str, trace_parent: str | None = None) -> JobResult | None:
        """Look up a result; returns a cache-flagged copy or None."""
        span = self.obs.tracer.begin("cache.lookup", parent_id=trace_parent)
        with self._lock:
            result, outcome = self._lookup(key)
        span.set("outcome", outcome)
        span.set("key", key[:16])
        self.obs.tracer.end(span)
        self.obs.metrics.counter("cache.lookups", outcome=outcome).inc()
        return result

    def _lookup(self, key: str) -> tuple[JobResult | None, str]:
        result = self._memory.get(key)
        if result is not None:
            self.stats.bump("hits_memory")
            self._touch(key)
            return result.cached_copy(), "memory-hit"
        if self.directory is not None:
            before = self.stats.corrupt
            result = self._read_disk(key)
            if result is not None:
                self._memory[key] = result
                self.stats.bump("hits_disk")
                if self.bounded and key not in self._lru:
                    # A file that appeared after init (another process'
                    # store): adopt it so the bounds keep covering it.
                    try:
                        size = self._path(key).stat().st_size
                    except OSError:  # pragma: no cover - raced deletion
                        size = 0
                    self._disk_bytes += size
                    self._lru[key] = size
                self._touch(key)
                return result.cached_copy(), "disk-hit"
            if self.stats.corrupt > before:
                self.stats.bump("misses")
                return None, "corrupt"
        self.stats.bump("misses")
        return None, "miss"

    def put(self, key: str, result: JobResult) -> None:
        """Store a freshly computed result under its job hash.

        The disk write goes through a same-directory temp file and
        ``os.replace``, so readers only ever see complete entries.  With
        bounds set, storing may evict least-recently-used entries — never
        the entry just stored.
        """
        with self._lock:
            self._memory[key] = result
            self.stats.bump("stores")
            size = 0
            if self.directory is not None:
                path = self._path(key)
                atomic_write_json(path, result.to_dict())
                if self.bounded:
                    size = path.stat().st_size
            if self.bounded:
                self._disk_bytes += size - self._lru.pop(key, 0)
                self._lru[key] = size
                self._evict(keep=key)
        self.obs.metrics.counter("cache.stores").inc()

    def clear(self) -> None:
        """Drop the in-memory tier (disk files are left in place)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    # LRU bookkeeping and eviction
    # ------------------------------------------------------------------
    def _seed_lru(self) -> None:
        """Adopt a pre-existing cache directory in file-mtime order.

        Oldest files become the least recently used, so a restarted
        service resumes evicting exactly where the previous process would
        have; the directory is also brought within bounds immediately.
        """
        entries = []
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced deletion
                continue
            entries.append((stat.st_mtime, path.stem, stat.st_size))
        for _, key, size in sorted(entries):
            self._lru[key] = size
            self._disk_bytes += size
        self._evict()

    def _touch(self, key: str) -> None:
        """Refresh one entry's recency (no-op for unbounded caches)."""
        if self.bounded and key in self._lru:
            self._lru.move_to_end(key)

    def _evict(self, keep: str | None = None) -> None:
        """Drop LRU entries until both bounds hold (``keep`` is immune)."""
        if not self.bounded:
            return
        while self._over_bounds():
            key = next(iter(self._lru))
            if key == keep:
                # The newest entry alone exceeds max_bytes: keep it (an
                # empty cache would just recompute and re-store forever).
                break
            self._evict_one(key)

    def _over_bounds(self) -> bool:
        if not self._lru:
            return False
        if self.max_entries is not None and len(self._lru) > self.max_entries:
            return True
        return self.max_bytes is not None and self._disk_bytes > self.max_bytes

    def _evict_one(self, key: str) -> None:
        """Remove one entry from both tiers and count the eviction."""
        size = self._lru.pop(key, 0)
        self._disk_bytes -= size
        self._memory.pop(key, None)
        if self.directory is not None:
            self._path(key).unlink(missing_ok=True)
        self.stats.bump("evictions")
        self.obs.metrics.counter("cache.evictions").inc()
        _log.debug("evicted cache entry %s (%d bytes)", key[:16], size)

    # ------------------------------------------------------------------
    def _read_disk(self, key: str) -> JobResult | None:
        """Load one disk entry; corrupt/unreadable entries become misses."""
        result, corrupt = load_json_or_discard(self._path(key), JobResult.from_dict)
        if corrupt:
            self.stats.bump("corrupt")
            if self.bounded:
                self._disk_bytes -= self._lru.pop(key, 0)
            _log.debug("discarded corrupt cache entry %s", key[:16])
        return result

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._memory or (
                self.directory is not None and self._path(key).exists()
            )
