"""Pauli-string algebra with exact phase tracking.

A Pauli operator on n qubits is represented in the symplectic form
``i^phase * prod_q X_q^{x[q]} Z_q^{z[q]}`` with ``phase`` mod 4.  This is the
shared currency between the stabilizer tableau, the Pauli-frame sampler, and
the noise analyses (Table 4 reports Pauli error strings).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..circuits.gates import I2, X, Y, Z

__all__ = ["Pauli"]

_SINGLE = {
    (0, 0): ("I", 0),
    (1, 0): ("X", 0),
    (1, 1): ("Y", 1),  # XZ = -iY, so Y = i * X Z
    (0, 1): ("Z", 0),
}

_MATRICES = {"I": I2, "X": X, "Y": Y, "Z": Z}


@dataclass
class Pauli:
    """An n-qubit Pauli operator ``i^phase * X^x Z^z``."""

    x: np.ndarray
    z: np.ndarray
    phase: int = 0

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=bool).copy()
        self.z = np.asarray(self.z, dtype=bool).copy()
        if self.x.shape != self.z.shape or self.x.ndim != 1:
            raise ValueError("x and z must be 1-D arrays of equal length")
        self.phase = self.phase % 4

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, num_qubits: int) -> "Pauli":
        """The identity operator on ``num_qubits`` qubits."""
        return cls(np.zeros(num_qubits, bool), np.zeros(num_qubits, bool), 0)

    @classmethod
    def from_label(cls, label: str) -> "Pauli":
        """Build from a string like ``"+XIZY"`` (sign prefix optional)."""
        phase = 0
        if label.startswith("+"):
            label = label[1:]
        elif label.startswith("-"):
            phase = 2
            label = label[1:]
        n = len(label)
        x = np.zeros(n, bool)
        z = np.zeros(n, bool)
        for i, ch in enumerate(label.upper()):
            if ch == "I":
                continue
            if ch == "X":
                x[i] = True
            elif ch == "Z":
                z[i] = True
            elif ch == "Y":
                x[i] = True
                z[i] = True
                phase = (phase + 1) % 4  # store Y as i * X Z
            else:
                raise ValueError(f"invalid Pauli character {ch!r}")
        return cls(x, z, phase)

    @classmethod
    def single(cls, num_qubits: int, qubit: int, kind: str) -> "Pauli":
        """A weight-one Pauli ``kind`` in {X, Y, Z} on ``qubit``."""
        p = cls.identity(num_qubits)
        kind = kind.upper()
        if kind == "X":
            p.x[qubit] = True
        elif kind == "Z":
            p.z[qubit] = True
        elif kind == "Y":
            p.x[qubit] = True
            p.z[qubit] = True
            p.phase = 1
        else:
            raise ValueError(f"invalid Pauli kind {kind!r}")
        return p

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return len(self.x)

    @property
    def weight(self) -> int:
        """Number of qubits with a non-identity factor."""
        return int(np.count_nonzero(self.x | self.z))

    def is_identity(self, up_to_phase: bool = True) -> bool:
        """Whether the operator is (proportional to) the identity."""
        trivial = not self.x.any() and not self.z.any()
        if up_to_phase:
            return trivial
        return trivial and self.phase == 0

    def copy(self) -> "Pauli":
        """Deep copy."""
        return Pauli(self.x, self.z, self.phase)

    # ------------------------------------------------------------------
    def __mul__(self, other: "Pauli") -> "Pauli":
        """Operator product self * other with exact phase."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli size mismatch")
        # (X^a Z^b)(X^c Z^d) = (-1)^(b.c) X^(a+c) Z^(b+d)
        anticommute = int(np.count_nonzero(self.z & other.x))
        phase = (self.phase + other.phase + 2 * anticommute) % 4
        return Pauli(self.x ^ other.x, self.z ^ other.z, phase)

    def commutes_with(self, other: "Pauli") -> bool:
        """Whether the two operators commute."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("Pauli size mismatch")
        sym = int(np.count_nonzero(self.x & other.z)) + int(
            np.count_nonzero(self.z & other.x)
        )
        return sym % 2 == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pauli):
            return NotImplemented
        return (
            bool(np.array_equal(self.x, other.x))
            and bool(np.array_equal(self.z, other.z))
            and self.phase == other.phase
        )

    def equal_up_to_phase(self, other: "Pauli") -> bool:
        """Whether the two operators agree ignoring the scalar prefactor."""
        return bool(np.array_equal(self.x, other.x)) and bool(
            np.array_equal(self.z, other.z)
        )

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes(), self.phase))

    # ------------------------------------------------------------------
    def to_label(self, include_sign: bool = True) -> str:
        """Human-readable label, e.g. ``"-XIZ"``."""
        chars = []
        phase = self.phase
        for xi, zi in zip(self.x, self.z):
            ch, extra = _SINGLE[(int(xi), int(zi))]
            chars.append(ch)
            phase = (phase - extra) % 4
        prefix = {0: "+", 1: "+i", 2: "-", 3: "-i"}[phase] if include_sign else ""
        return prefix + "".join(chars)

    def bare_label(self) -> str:
        """Label without a sign prefix (e.g. for Table 4 tallies)."""
        return self.to_label(include_sign=False)

    def to_matrix(self) -> np.ndarray:
        """Dense matrix (small n only)."""
        label = self.to_label(include_sign=False)
        out = np.array([[1.0 + 0j]])
        for ch in label:
            out = np.kron(out, _MATRICES[ch])
        phase = self.phase
        for xi, zi in zip(self.x, self.z):
            __, extra = _SINGLE[(int(xi), int(zi))]
            phase = (phase - extra) % 4
        return (1j**phase) * out

    def restricted(self, qubits: Sequence[int]) -> "Pauli":
        """Restriction to a subset of qubits (phase reset to +1)."""
        qubits = list(qubits)
        return Pauli(self.x[qubits], self.z[qubits], 0)

    def __repr__(self) -> str:
        return f"Pauli({self.to_label()})"
