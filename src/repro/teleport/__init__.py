"""Teleoperations: teledata (state) and telegate (gate) primitives."""

from .teledata import TeleportRecord, teleport_qubit, teleport_register
from .telegate import (
    CatLink,
    cat_disentangle,
    cat_entangle,
    remote_cnot,
    remote_cz,
    remote_toffoli_via_and,
)

__all__ = [
    "TeleportRecord",
    "teleport_qubit",
    "teleport_register",
    "CatLink",
    "cat_disentangle",
    "cat_entangle",
    "remote_cnot",
    "remote_cz",
    "remote_toffoli_via_and",
]
