"""Unit tests for repro.utils.states."""

import numpy as np
import pytest

from repro.utils.linalg import is_density_matrix
from repro.utils.states import (
    computational_basis_state,
    depolarize_state,
    ghz_state,
    noisy_pure_state,
    plus_state,
    product_state,
    random_density_matrix,
    random_hermitian,
    random_product_density,
    random_pure_state,
    thermal_state,
    w_state,
)

RNG = np.random.default_rng(99)


class TestBasisStates:
    def test_basis_state_one_hot(self):
        v = computational_basis_state(3, 2)
        assert v[3] == 1.0 and np.count_nonzero(v) == 1

    def test_basis_state_range(self):
        with pytest.raises(ValueError):
            computational_basis_state(4, 2)

    def test_plus_state_uniform(self):
        v = plus_state(3)
        assert np.allclose(np.abs(v) ** 2, 1 / 8)

    def test_ghz_components(self):
        v = ghz_state(3)
        assert abs(v[0] - 1 / np.sqrt(2)) < 1e-12
        assert abs(v[-1] - 1 / np.sqrt(2)) < 1e-12
        assert np.count_nonzero(v) == 2

    def test_w_state_single_excitations(self):
        v = w_state(3)
        nonzero = np.nonzero(v)[0]
        assert sorted(nonzero) == [1, 2, 4]
        assert abs(np.linalg.norm(v) - 1.0) < 1e-12


class TestRandomStates:
    def test_pure_state_normalised(self):
        v = random_pure_state(3, RNG)
        assert abs(np.linalg.norm(v) - 1.0) < 1e-12

    def test_density_matrix_valid(self):
        assert is_density_matrix(random_density_matrix(2, rng=RNG))

    def test_density_rank_control(self):
        rho = random_density_matrix(2, rank=1, rng=RNG)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert np.sum(eigenvalues > 1e-9) == 1

    def test_density_rank_bounds(self):
        with pytest.raises(ValueError):
            random_density_matrix(1, rank=3, rng=RNG)

    def test_product_density_count(self):
        states = random_product_density(4, 1, rng=RNG)
        assert len(states) == 4
        assert all(is_density_matrix(s) for s in states)

    def test_reproducible_with_seed(self):
        a = random_pure_state(2, np.random.default_rng(5))
        b = random_pure_state(2, np.random.default_rng(5))
        assert np.allclose(a, b)


class TestThermal:
    def test_thermal_is_density(self):
        h = random_hermitian(2, RNG)
        assert is_density_matrix(thermal_state(h, 1.0))

    def test_infinite_temperature_is_mixed(self):
        h = random_hermitian(1, RNG)
        rho = thermal_state(h, 0.0)
        assert np.allclose(rho, np.eye(2) / 2)

    def test_low_temperature_approaches_ground(self):
        h = np.diag([0.0, 1.0]).astype(complex)
        rho = thermal_state(h, 50.0)
        assert rho[0, 0] > 0.999

    def test_energy_decreases_with_beta(self):
        h = random_hermitian(2, RNG)
        energies = [
            float(np.real(np.trace(h @ thermal_state(h, beta))))
            for beta in (0.1, 1.0, 5.0)
        ]
        assert energies[0] >= energies[1] >= energies[2]


class TestNoiseHelpers:
    def test_depolarize_full(self):
        rho = random_density_matrix(1, rng=RNG)
        assert np.allclose(depolarize_state(rho, 1.0), np.eye(2) / 2)

    def test_depolarize_none(self):
        rho = random_density_matrix(1, rng=RNG)
        assert np.allclose(depolarize_state(rho, 0.0), rho)

    def test_depolarize_bounds(self):
        with pytest.raises(ValueError):
            depolarize_state(np.eye(2) / 2, 1.5)

    def test_noisy_pure_state_dominant_eigenvector(self):
        psi, rho = noisy_pure_state(2, 0.4, RNG)
        eigenvalues, vectors = np.linalg.eigh(rho)
        top = vectors[:, -1]
        assert abs(np.vdot(top, psi)) ** 2 > 0.999

    def test_product_state(self):
        a = random_pure_state(1, RNG)
        b = random_pure_state(1, RNG)
        assert np.allclose(product_state([a, b]), np.kron(a, b))
