"""Unit tests for the circuit IR (repro.circuits)."""

import numpy as np
import pytest

from repro.circuits import Circuit, Condition, gate_matrix
from repro.circuits.gates import CCX_MATRIX, CSWAP_MATRIX, CX_MATRIX, GATES
from repro.utils.linalg import is_unitary


class TestGateRegistry:
    @pytest.mark.parametrize("name", sorted(GATES))
    def test_all_gates_unitary(self, name):
        spec = GATES[name]
        params = [0.3] * spec.num_params
        assert is_unitary(spec.matrix(params))

    def test_cx_truth_table(self):
        assert np.allclose(CX_MATRIX @ np.eye(4)[:, 2], np.eye(4)[:, 3])

    def test_ccx_flips_only_when_both_controls(self):
        for basis in range(8):
            out = CCX_MATRIX[:, basis]
            expect = basis ^ 1 if basis >= 6 else basis
            assert out[expect] == 1.0

    def test_cswap_swaps_targets(self):
        assert CSWAP_MATRIX[0b110, 0b101] == 1.0
        assert CSWAP_MATRIX[0b101, 0b110] == 1.0
        assert CSWAP_MATRIX[0b001, 0b001] == 1.0

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gate_matrix("bogus")

    def test_rotation_identity_at_zero(self):
        for name in ("rx", "ry", "rz"):
            assert np.allclose(gate_matrix(name, [0.0]), np.eye(2))


class TestCondition:
    def test_parity_evaluation(self):
        cond = Condition((0, 2), 1)
        assert cond.evaluate([1, 0, 0])
        assert not cond.evaluate([1, 0, 1])

    def test_value_zero(self):
        cond = Condition((0,), 0)
        assert cond.evaluate([0])
        assert not cond.evaluate([1])

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            Condition((0,), 2)

    def test_empty_clbits(self):
        with pytest.raises(ValueError):
            Condition((), 1)


class TestCircuitConstruction:
    def test_append_validates_arity(self):
        with pytest.raises(ValueError):
            Circuit(2).append("cx", [0])

    def test_append_validates_range(self):
        with pytest.raises(IndexError):
            Circuit(1).h(3)

    def test_append_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Circuit(2).cx(0, 0)

    def test_clbit_range_checked(self):
        with pytest.raises(IndexError):
            Circuit(1, 1).measure(0, 5)

    def test_condition_clbits_checked(self):
        with pytest.raises(IndexError):
            Circuit(1, 1).x(0, condition=Condition((3,), 1))

    def test_fluent_chaining(self):
        c = Circuit(2).h(0).cx(0, 1)
        assert len(c) == 2

    def test_count_ops(self):
        c = Circuit(2, 1).h(0).h(1).cx(0, 1).measure(0, 0)
        counts = c.count_ops()
        assert counts["h"] == 2 and counts["cx"] == 1 and counts["measure"] == 1

    def test_qubits_used(self):
        c = Circuit(4).h(1).cx(1, 3)
        assert c.qubits_used() == {1, 3}

    def test_two_qubit_gate_count(self):
        c = Circuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        assert c.two_qubit_gate_count() == 2

    def test_repr_and_draw(self):
        c = Circuit(2, 1).h(0).measure(0, 0)
        assert "Circuit" in repr(c)
        assert "measure" in c.draw()


class TestCompose:
    def test_compose_identity_map(self):
        a = Circuit(2).h(0)
        b = Circuit(2).cx(0, 1)
        a.compose(b)
        assert [i.name for i in a] == ["h", "cx"]

    def test_compose_with_qubit_map(self):
        inner = Circuit(2).cx(0, 1)
        outer = Circuit(3)
        outer.compose(inner, qubit_map=[2, 0])
        assert outer.instructions[0].qubits == (2, 0)

    def test_compose_remaps_conditions(self):
        inner = Circuit(1, 2)
        inner.measure(0, 0)
        inner.x(0, condition=Condition((0,), 1))
        outer = Circuit(1, 4)
        outer.compose(inner, clbit_map=[3, 2])
        assert outer.instructions[1].condition.clbits == (3,)


class TestInverse:
    def test_inverse_of_unitary_circuit(self):
        c = Circuit(2).h(0).s(0).cx(0, 1).t(1)
        product = c.to_unitary() @ c.inverse().to_unitary()
        assert np.allclose(product, np.eye(4), atol=1e-10)

    def test_inverse_rejects_measurement(self):
        c = Circuit(1, 1).measure(0, 0)
        with pytest.raises(ValueError):
            c.inverse()

    def test_inverse_of_rotations(self):
        c = Circuit(1).rx(0.3, 0).rz(-0.7, 0)
        assert np.allclose(
            c.inverse().to_unitary() @ c.to_unitary(), np.eye(2), atol=1e-10
        )


class TestToUnitary:
    def test_bell_circuit_unitary(self):
        u = Circuit(2).h(0).cx(0, 1).to_unitary()
        out = u @ np.array([1, 0, 0, 0], dtype=complex)
        assert np.allclose(out, [1 / np.sqrt(2), 0, 0, 1 / np.sqrt(2)])

    def test_rejects_measurement(self):
        with pytest.raises(ValueError):
            Circuit(1, 1).measure(0, 0).to_unitary()

    def test_rejects_condition(self):
        c = Circuit(1, 1)
        c.x(0, condition=Condition((0,), 1))
        with pytest.raises(ValueError):
            c.to_unitary()


class TestDeferMeasurements:
    def test_defers_measure_and_x_feedback(self):
        c = Circuit(2, 1)
        c.h(0).measure(0, 0)
        c.x(1, condition=Condition((0,), 1))
        deferred = c.defer_measurements()
        assert deferred.num_measurements() == 0
        names = [i.name for i in deferred]
        assert "cx" in names

    def test_defer_value_zero_adds_complement(self):
        c = Circuit(2, 1)
        c.measure(0, 0)
        c.x(1, condition=Condition((0,), 0))
        deferred = c.defer_measurements()
        names = [i.name for i in deferred]
        assert names.count("x") == 1 and "cx" in names

    def test_defer_rejects_reuse(self):
        c = Circuit(1, 1)
        c.measure(0, 0).h(0)
        with pytest.raises(ValueError):
            c.defer_measurements()

    def test_defer_rejects_reset(self):
        c = Circuit(1, 1).measure(0, 0)
        c.reset(0)
        with pytest.raises(ValueError):
            c.defer_measurements()

    def test_defer_rejects_non_pauli_feedback(self):
        c = Circuit(2, 1).measure(0, 0)
        c.h(1, condition=Condition((0,), 1))
        with pytest.raises(ValueError):
            c.defer_measurements()

    def test_defer_y_feedback(self):
        c = Circuit(2, 1)
        c.h(0).measure(0, 0)
        c.y(1, condition=Condition((0,), 1))
        deferred = c.defer_measurements()
        assert deferred.num_measurements() == 0


class TestDepth:
    def test_empty_circuit(self):
        assert Circuit(2).depth() == 0

    def test_parallel_gates_share_layer(self):
        c = Circuit(3).h(0).h(1).h(2)
        assert c.depth() == 1

    def test_serial_chain(self):
        c = Circuit(3).cx(0, 1).cx(1, 2)
        assert c.depth() == 2

    def test_barrier_synchronises(self):
        c = Circuit(2)
        c.h(0)
        c.barrier()
        c.h(1)
        assert c.depth() == 2

    def test_measure_not_counted_when_disabled(self):
        c = Circuit(1, 1).h(0).measure(0, 0)
        assert c.depth(count_measurements=True) == 2
        assert c.depth(count_measurements=False) == 1

    def test_condition_waits_for_measurement(self):
        c = Circuit(2, 1)
        c.measure(0, 0)
        c.x(1, condition=Condition((0,), 1))
        # The conditioned gate cannot start before the measurement finishes.
        assert c.depth() == 2
