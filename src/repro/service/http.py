"""Asyncio HTTP front door: submit, poll, stream, cancel, observe.

A deliberately small stdlib-only HTTP/1.1 server (``asyncio.start_server``
plus a hand-rolled request parser — the repository adds no dependencies)
exposing the :class:`~repro.service.core.ExperimentService`:

====================  =====================================================
``POST /jobs``        submit an ExperimentSpec JSON; 202 with the job id
                      (409-free: an identical in-flight spec dedupes)
``GET /jobs/{id}``    poll: state, timestamps, and the result when done
``GET /jobs/{id}/events``  stream the event log as NDJSON (one JSON object
                      per line; sweeps stream per-point results live)
``DELETE /jobs/{id}`` cooperative cancel; queued batches are dropped
``GET /metrics``      queue depth, p50/p99 latency, cache hit rate, ...
``GET /healthz``      liveness
====================  =====================================================

Error discipline: a malformed or hostile spec is a 400 with the parser's
client-safe message, a full tenant backlog is a 429, an unknown id a 404
— and *anything* unexpected is a 500 with the constant body
``{"error": "internal server error"}``.  No path returns a stack trace.

:class:`ServiceServer` wraps the event loop in a background thread with a
context-manager lifecycle, which is how the tests, the example client,
and the benchmark drive a real server over real sockets in-process.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading

from .core import ExperimentService
from .queue import QuotaExceeded
from .specparse import SpecError

__all__ = ["ServiceServer", "serve"]

_log = logging.getLogger("repro.service.http")

_MAX_HEADER_BYTES = 64 * 1024
_STREAM_POLL_SECONDS = 0.25


class _HttpError(Exception):
    """An error with a status code and a client-safe message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _response(status: int, payload: dict, extra_headers: tuple = ()) -> bytes:
    body = json.dumps(payload).encode()
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
        *extra_headers,
        "",
        "",
    ]
    return "\r\n".join(head).encode() + body


class _Request:
    """One parsed request: method, path segments, JSON body."""

    __slots__ = ("method", "path", "body")

    def __init__(self, method: str, path: str, body: bytes):
        self.method = method
        self.path = path
        self.body = body

    def json(self):
        if not self.body:
            raise _HttpError(400, "request body must be JSON")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(400, "request body is not valid JSON") from None


async def _read_request(reader, max_body: int) -> _Request | None:
    """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise _HttpError(400, "truncated request") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request headers too large") from None
    if len(head) > _MAX_HEADER_BYTES:
        raise _HttpError(413, "request headers too large")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    length = 0
    for line in lines[1:]:
        if ":" not in line:
            continue
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise _HttpError(400, "malformed Content-Length") from None
    if length < 0 or length > max_body:
        raise _HttpError(413, f"request body exceeds {max_body} bytes")
    body = await reader.readexactly(length) if length else b""
    return _Request(method.upper(), path.split("?", 1)[0], body)


class _Router:
    """Dispatches parsed requests onto one service."""

    def __init__(self, service: ExperimentService):
        self.service = service

    async def handle(self, reader, writer) -> None:
        try:
            try:
                request = await _read_request(reader, self.service.config.max_body_bytes)
                if request is None:
                    return
                await self.dispatch(request, writer)
            except _HttpError as exc:
                writer.write(_response(exc.status, {"error": exc.message}))
            except (SpecError, ValueError) as exc:
                writer.write(_response(400, {"error": str(exc)}))
            except QuotaExceeded as exc:
                writer.write(_response(429, {"error": str(exc)}))
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except Exception:
                _log.exception("unhandled error serving request")
                writer.write(_response(500, {"error": "internal server error"}))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def dispatch(self, request: _Request, writer) -> None:
        segments = [s for s in request.path.split("/") if s]
        if request.path == "/healthz" and request.method == "GET":
            writer.write(_response(200, self.service.health()))
            return
        if request.path == "/metrics" and request.method == "GET":
            writer.write(_response(200, self.service.metrics_snapshot()))
            return
        if segments[:1] == ["jobs"]:
            await self._jobs(request, segments[1:], writer)
            return
        raise _HttpError(404, f"no such path: {request.path}")

    async def _jobs(self, request: _Request, rest: list, writer) -> None:
        if not rest:
            if request.method != "POST":
                raise _HttpError(405, "job collection accepts POST only")
            payload = request.json()
            record, deduped = self.service.submit(payload)
            writer.write(_response(202, {
                "job_id": record.job_id,
                "state": record.state,
                "deduped": deduped,
            }))
            return
        job_id = rest[0]
        record = self.service.get(job_id)
        if record is None:
            raise _HttpError(404, f"no such job: {job_id}")
        if len(rest) == 1:
            if request.method == "GET":
                writer.write(_response(200, record.to_dict()))
                return
            if request.method == "DELETE":
                self.service.cancel(job_id)
                writer.write(_response(200, {
                    "job_id": job_id,
                    "state": record.state,
                }))
                return
            raise _HttpError(405, "job accepts GET or DELETE")
        if rest[1:] == ["events"] and request.method == "GET":
            await self._stream(record, writer)
            return
        raise _HttpError(404, f"no such path: {request.path}")

    async def _stream(self, record, writer) -> None:
        """NDJSON event stream: replays the log, then follows it live."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        loop = asyncio.get_running_loop()
        changed = asyncio.Event()
        record.add_waker(lambda: loop.call_soon_threadsafe(changed.set))
        cursor = 0
        while True:
            chunk, cursor, finished = record.events_since(cursor)
            for event in chunk:
                writer.write(json.dumps(event).encode() + b"\n")
            if chunk:
                await writer.drain()
            if finished:
                return
            # The waker is the fast path; the timeout is a backstop for
            # events published before the waker was registered.
            try:
                await asyncio.wait_for(changed.wait(), timeout=_STREAM_POLL_SECONDS)
            except (asyncio.TimeoutError, TimeoutError):
                pass
            changed.clear()


async def serve(service: ExperimentService, host: str = "127.0.0.1", port: int = 0):
    """Start the service workers and the HTTP listener; returns the server."""
    await service.start()
    router = _Router(service)
    return await asyncio.start_server(router.handle, host, port)


class ServiceServer:
    """A real HTTP server on a background thread (tests, examples, bench).

    ``port=0`` picks a free port; :attr:`base_url` reports the bound
    address once :meth:`start` (or the context manager) returns.  The
    event loop, the service workers, and the listener all live on the
    background thread; ``stop()`` shuts them down and joins it.
    """

    def __init__(self, service: ExperimentService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("service did not start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await serve(self.service, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self.service.stop()
