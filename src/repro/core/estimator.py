"""Trace estimation from SWAP-test measurements.

The readout statistics of the GHZ register determine the multivariate trace
(Sec 2.3): with the joint state (|0...0>|psi> + |1...1> W|psi>)/sqrt(2),

* the X^(x)m parity equals  Re tr(W rho),
* replacing the first X by Y equals  Im tr(W rho).

``multiparty_swap_test`` is the library's front door: it builds the chosen
variant, samples eigenvector trajectories for mixed inputs, runs the X- and
Y-basis circuits, and returns a :class:`MultivariateTraceResult`.  The exact
(shot-free) path used throughout the test-suite evaluates the same circuits
as unitaries and sums over the input states' eigen-decompositions.

Shot execution flows through :mod:`repro.engine`: each basis run becomes a
content-hashed :class:`~repro.engine.Job` whose shots the engine splits into
deterministic batches.  Passing ``engine=Engine(workers=4, cache=True)``
parallelises and caches the runs *bit-identically* to the default
single-worker direct path, because batch RNG substreams depend only on the
job spec, never on the worker count.

As of the declarative API redesign the estimation pipeline itself lives in
:func:`repro.api.execution.run_multiparty_swap_test`; the
:func:`multiparty_swap_test` function kept here is a thin deprecated
wrapper over ``Experiment.swap_test(...).run()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..engine import Engine, Job
from ..sim.noisemodel import NoiseModel
from ..sim.statevector import StatevectorSimulator, apply_gate
from ..utils.linalg import kron_all
from ..utils.states import assemble_initial_state
from .protocol import ProtocolBuild, _eigen_ensembles, protocol_job
from .swap_test import SwapTestBuild, build_monolithic_swap_test

__all__ = [
    "MultivariateTraceResult",
    "assemble_initial_state",
    "sample_pure_inputs",
    "swap_test_job",
    "run_swap_test_shots",
    "exact_swap_test_expectation",
    "multiparty_swap_test",
]

_FALLBACK_ENGINE: Engine | None = None


def _default_engine() -> Engine:
    """The serial, uncached engine used when the caller supplies none."""
    global _FALLBACK_ENGINE
    if _FALLBACK_ENGINE is None:
        _FALLBACK_ENGINE = Engine(workers=1, executor="serial", cache=False)
    return _FALLBACK_ENGINE


@dataclass
class MultivariateTraceResult:
    """Estimated multivariate trace with statistics and resource info."""

    estimate: complex
    stderr_re: float
    stderr_im: float
    shots_re: int
    shots_im: int
    k: int
    n: int
    variant: str
    resources: dict = field(default_factory=dict)

    @property
    def real(self) -> float:
        """Re tr(rho_1 ... rho_k)."""
        return self.estimate.real

    @property
    def imag(self) -> float:
        """Im tr(rho_1 ... rho_k)."""
        return self.estimate.imag

    def within(self, exact: complex, sigmas: float = 5.0) -> bool:
        """Whether ``exact`` lies within ``sigmas`` standard errors."""
        margin_re = sigmas * max(self.stderr_re, 1e-12)
        margin_im = sigmas * max(self.stderr_im, 1e-12)
        return (
            abs(self.estimate.real - exact.real) <= margin_re
            and abs(self.estimate.imag - exact.imag) <= margin_im
        )


def sample_pure_inputs(
    states: Sequence[np.ndarray], rng: np.random.Generator
) -> list[np.ndarray]:
    """Draw one pure state per input from each state's eigen-decomposition.

    Density matrices are convex mixtures of their eigenvectors, so sampling
    eigenvectors with eigenvalue weights gives an unbiased trajectory
    unravelling of the mixed-state protocol.
    """
    out = []
    for rho in states:
        rho = np.asarray(rho, dtype=complex)
        if rho.ndim == 1:
            out.append(rho)
            continue
        weights, vectors = np.linalg.eigh(rho)
        weights = np.clip(np.real(weights), 0.0, None)
        weights = weights / weights.sum()
        choice = rng.choice(len(weights), p=weights)
        out.append(vectors[:, choice])
    return out


def swap_test_job(
    build: ProtocolBuild,
    states: Sequence[np.ndarray],
    shots: int,
    seed: int,
    noise: NoiseModel | None = None,
    batch_size: int | None = None,
    backend: str | None = None,
) -> Job:
    """Package a built (readout-carrying) SWAP test as an engine job.

    A thin alias over :func:`repro.core.protocol.protocol_job`, kept under
    its historical name: any :class:`~repro.core.protocol.ProtocolBuild`
    (monolithic, COMPAS, or the newer family members) packages the same
    way.
    """
    return protocol_job(
        build,
        states,
        shots,
        seed,
        noise=noise,
        batch_size=batch_size,
        backend=backend,
    )


def run_swap_test_shots(
    build: SwapTestBuild,
    states: Sequence[np.ndarray],
    shots: int,
    rng: np.random.Generator,
    noise: NoiseModel | None = None,
    engine: Engine | None = None,
) -> tuple[float, float]:
    """Run ``shots`` trajectories of a built (readout-carrying) circuit.

    Returns ``(mean_parity, stderr)`` where parity is the +-1 product of the
    GHZ-register outcomes.  The job seed is drawn from ``rng``; execution
    goes through ``engine`` (or the serial fallback engine).
    """
    job = swap_test_job(build, states, shots, int(rng.integers(2**63)), noise=noise)
    result = (engine or _default_engine()).run(job)
    return result.parity_mean, result.parity_stderr


def _ghz_observable(build: SwapTestBuild, which: str) -> np.ndarray:
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    ops = [y if (which == "y" and i == 0) else x for i in range(build.ghz_width)]
    return kron_all(ops)


def exact_swap_test_expectation(
    states: Sequence[np.ndarray],
    variant: str = "b",
    ghz_mode: str = "linear",
    observable: str | None = None,
) -> complex:
    """Shot-free reference: exact tr(rho_1 ... rho_k) via the circuit itself.

    Builds the measurement-free variant (default 'b': plain CSWAP gates, no
    mid-circuit measurement), evaluates <X...X> and <Y X...X> on the GHZ
    register exactly, and sums over the eigen-decomposition of every mixed
    input.  Used by tests to prove the circuit computes the right quantity.
    """
    k = len(states)
    states = [np.asarray(s, dtype=complex) for s in states]
    n = int(math.log2(states[0].shape[0]))
    build = build_monolithic_swap_test(
        k, n, variant=variant, basis=None, ghz_mode=ghz_mode, observable=observable
    )
    circuit = build.circuit()
    if circuit.num_measurements():
        raise ValueError("exact path requires a measurement-free variant")
    simulator = StatevectorSimulator(seed=0)
    obs_x = _ghz_observable(build, "x")
    obs_y = _ghz_observable(build, "y")
    ensembles = _eigen_ensembles(states)

    def recurse(index: int, weight: float, chosen: list[np.ndarray]) -> complex:
        if index == k:
            placements = {
                build.position_registers[p]: chosen[build.user_of_position[p]]
                for p in range(k)
            }
            init = assemble_initial_state(circuit.num_qubits, placements)
            final = simulator.run(circuit, initial_state=init).statevector
            ghz = list(build.ghz_qubits)
            val_x = np.vdot(final, apply_gate(final.copy(), obs_x, ghz, circuit.num_qubits))
            val_y = np.vdot(final, apply_gate(final.copy(), obs_y, ghz, circuit.num_qubits))
            return weight * complex(val_x.real, val_y.real)
        total = 0.0 + 0.0j
        for w, vector in ensembles[index]:
            total += recurse(index + 1, weight * w, chosen + [vector])
        return total

    return recurse(0, 1.0, [])


def multiparty_swap_test(
    states: Sequence[np.ndarray],
    *,
    shots: int = 20000,
    variant: str = "d",
    seed: int | None = None,
    noise: NoiseModel | None = None,
    ghz_mode: str = "linear",
    backend: str = "monolithic",
    design: str = "teledata",
    observable: str | None = None,
    engine: Engine | None = None,
) -> MultivariateTraceResult:
    """Estimate tr(rho_1 rho_2 ... rho_k) with the multi-party SWAP test.

    .. deprecated:: 1.1
        Thin wrapper over ``Experiment.swap_test(...).run(engine)``; use
        :class:`repro.api.Experiment` directly.  Results are bit-identical
        at the same integer seed.  ``seed=None`` now draws one fresh
        entropy-pool seed and records it under ``result.resources["seed"]``
        so the run stays reproducible after the fact.
    """
    from ..api import Experiment
    from ..api.deprecation import warn_legacy

    warn_legacy("multiparty_swap_test()", "Experiment.swap_test(...).run()")
    return (
        Experiment.swap_test(
            states,
            shots=shots,
            seed=seed,
            variant=variant,
            ghz_mode=ghz_mode,
            backend=backend,
            design=design,
            observable=observable,
            noise=noise,
        )
        .run(engine=engine)
        .raw
    )
