"""Quickstart: estimate a multivariate trace with the multi-party SWAP test.

Declares the workload once as an ``Experiment`` spec, runs it through the
execution engine (worker pool + result cache), compares against the exact
trace tr(rho_1 rho_2 rho_3), sweeps the shot budget, and repeats the
experiment on the fully distributed protocol, printing its Bell-pair
ledger and locality audit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Engine, Experiment, random_density_matrix
from repro.core import build_compas


def main() -> None:
    rng = np.random.default_rng(7)
    states = [random_density_matrix(1, rng=rng) for _ in range(3)]

    # One declarative spec: what to run (protocol, noise, network) plus how
    # (shots, seed).  Validated and content-hashed at construction.
    experiment = Experiment.swap_test(states, shots=4000, variant="d", seed=1)
    print(f"experiment hash          = {experiment.content_hash()[:16]}...")

    # All shot execution flows through the engine: shots are split into
    # batches across a worker pool and results are cached by job hash.
    with Engine(workers=4, cache=True) as engine:
        # Monolithic constant-depth circuit (the paper's Fig 2d variant),
        # with the exact reference computed alongside.
        result = experiment.run(engine, with_exact=True)
        print(f"exact tr(rho1 rho2 rho3) = {result.exact:.4f}")
        print(
            f"monolithic estimate      = {result.estimate:.4f}"
            f"  (stderr {result.stderr:.4f}, seed {result.seed})"
        )

        # Re-running the identical experiment is served from the cache.
        repeat = experiment.run(engine)
        print(
            f"repeat (cache hit)       = {repeat.estimate:.4f}"
            f"  from_cache={repeat.extra['resources']['engine']['from_cache']}"
        )

        # Sweeps derive one experiment per grid point through the same
        # engine — bit-identical for any worker count.
        sweep = experiment.sweep(over="shots", values=[1000, 2000, 4000], engine=engine)
        for point in sweep:
            print(
                f"  sweep shots={point.params['shots']:>5}: "
                f"{point.result.estimate:.4f}"
            )

        # Fully distributed COMPAS protocol, one QPU per state.
        distributed = experiment.derive(backend="compas", shots=2000, seed=2)
        result = distributed.run(engine)
        print(
            f"distributed estimate     = {result.estimate:.4f}"
            f"  (stderr {result.stderr:.4f})"
        )
        print("engine stats:", engine.stats_dict())

    # Every result envelope serializes losslessly (benchmarks persist these).
    payload = result.to_dict()
    print("envelope keys:", sorted(payload))

    build = build_compas(3, 1, design="teledata", basis="x")
    report = build.locality()
    print(
        f"\nCOMPAS build: {build.total_qubits} qubits over 3 QPUs, "
        f"GHZ width {build.ghz_width}"
    )
    print(f"locality audit: local ops = {report.local_ops}, "
          f"bell generations = {report.bell_generation_ops}, "
          f"violations = {len(report.violations)}")
    print("bell ledger:", build.program.ledger.summary())
    print("stage depths:", build.stage_depths)


if __name__ == "__main__":
    main()
