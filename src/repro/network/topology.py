"""Network topologies connecting QPUs.

The paper assumes a line topology ("the simplest connectivity", Sec 2.5) and
counts one physical Bell pair per hop when long-range pairs are stitched by
entanglement swapping.  Ring / star / all-to-all variants are provided for
the topology-ablation benchmark (the paper's Sec 7 lists network topology as
the main architecture-side extension).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from .qpu import validate_qpu_names

__all__ = ["Topology", "line_topology", "ring_topology", "star_topology", "complete_topology"]


class Topology:
    """A connectivity graph over named QPUs with hop-distance queries."""

    def __init__(self, graph: nx.Graph, name: str):
        if graph.number_of_nodes() == 0:
            raise ValueError("topology needs at least one node")
        if not nx.is_connected(graph):
            raise ValueError("topology must be connected")
        self.graph = graph
        self.name = name
        self._dist = dict(nx.all_pairs_shortest_path_length(graph))

    @property
    def nodes(self) -> list:
        """QPU names in insertion order."""
        return list(self.graph.nodes)

    def distance(self, a, b) -> int:
        """Hop count between two QPUs."""
        try:
            return self._dist[a][b]
        except KeyError as exc:
            raise KeyError(f"unknown QPU in distance query: {a!r} or {b!r}") from exc

    def are_adjacent(self, a, b) -> bool:
        """Whether two QPUs share a direct link."""
        return self.graph.has_edge(a, b)

    def path(self, a, b) -> list:
        """One shortest path between two QPUs."""
        return nx.shortest_path(self.graph, a, b)

    def swapping_cost(self, a, b) -> int:
        """Physical Bell pairs consumed to produce one a—b pair.

        Entanglement swapping stitches one nearest-neighbour pair per hop
        (Sec 2.5), so the cost equals the hop distance.
        """
        return self.distance(a, b)

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, nodes={self.graph.number_of_nodes()})"


def line_topology(names: Sequence) -> Topology:
    """QPUs on a line, adjacent indices connected."""
    graph = nx.Graph()
    names = validate_qpu_names(names)
    graph.add_nodes_from(names)
    graph.add_edges_from(zip(names, names[1:]))
    return Topology(graph, "line")


def ring_topology(names: Sequence) -> Topology:
    """Line plus a wrap-around link."""
    names = validate_qpu_names(names)
    graph = nx.Graph()
    graph.add_nodes_from(names)
    graph.add_edges_from(zip(names, names[1:]))
    if len(names) > 2:
        graph.add_edge(names[-1], names[0])
    return Topology(graph, "ring")


def star_topology(names: Sequence) -> Topology:
    """First QPU is a hub connected to all others."""
    names = validate_qpu_names(names)
    graph = nx.Graph()
    graph.add_nodes_from(names)
    graph.add_edges_from((names[0], other) for other in names[1:])
    return Topology(graph, "star")


def complete_topology(names: Sequence) -> Topology:
    """All-to-all links."""
    names = validate_qpu_names(names)
    graph = nx.complete_graph(len(names))
    mapping = dict(enumerate(names))
    return Topology(nx.relabel_nodes(graph, mapping), "complete")
