"""Quickstart: estimate a multivariate trace with the multi-party SWAP test.

Builds three random single-qubit mixed states, runs the constant-depth
COMPAS-style circuit (Fig 2d) through the execution engine (worker pool +
result cache), and compares the estimate against the exact trace
tr(rho_1 rho_2 rho_3).  Then repeats the experiment on the fully
distributed protocol, printing its Bell-pair ledger and locality audit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Engine, multiparty_swap_test, random_density_matrix
from repro.core import build_compas
from repro.core.cyclic_shift import multivariate_trace


def main() -> None:
    rng = np.random.default_rng(7)
    states = [random_density_matrix(1, rng=rng) for _ in range(3)]
    exact = multivariate_trace(states)
    print(f"exact tr(rho1 rho2 rho3) = {exact:.4f}")

    # All shot execution flows through the engine: shots are split into
    # batches across a worker pool and results are cached by job hash.
    with Engine(workers=4, cache=True) as engine:
        # Monolithic constant-depth circuit (the paper's Fig 2d variant).
        result = multiparty_swap_test(states, shots=4000, variant="d", seed=1, engine=engine)
        print(
            f"monolithic estimate      = {result.estimate:.4f}"
            f"  (stderr {result.stderr_re:.4f})"
        )

        # Re-running the identical experiment is served from the cache.
        repeat = multiparty_swap_test(states, shots=4000, variant="d", seed=1, engine=engine)
        print(
            f"repeat (cache hit)       = {repeat.estimate:.4f}"
            f"  from_cache={repeat.resources['engine']['from_cache']}"
        )

        # Fully distributed COMPAS protocol, one QPU per state.
        result = multiparty_swap_test(
            states, shots=2000, seed=2, backend="compas", design="teledata", engine=engine
        )
        print(
            f"distributed estimate     = {result.estimate:.4f}"
            f"  (stderr {result.stderr_re:.4f})"
        )
        print("engine stats:", engine.stats_dict())

    build = build_compas(3, 1, design="teledata", basis="x")
    report = build.locality()
    print(
        f"\nCOMPAS build: {build.total_qubits} qubits over 3 QPUs, "
        f"GHZ width {build.ghz_width}"
    )
    print(f"locality audit: local ops = {report.local_ops}, "
          f"bell generations = {report.bell_generation_ops}, "
          f"violations = {len(report.violations)}")
    print("bell ledger:", build.program.ledger.summary())
    print("stage depths:", build.stage_depths)


if __name__ == "__main__":
    main()
