"""Declarative experiment API: typed specs, one result envelope, sweeps.

The public surface of the repository, redesigned around *what* to run
instead of per-function plumbing:

* :class:`ProtocolSpec` / :class:`NoiseSpec` / :class:`NetworkSpec` /
  :class:`RunOptions` — frozen, validated, content-hashed specifications;
* :class:`Experiment` — the facade with one constructor per workload and
  ``run`` / ``run_exact`` / ``sweep`` methods;
* :class:`ExperimentResult` — the single JSON-round-trippable envelope
  every run returns;
* :class:`SweepResult` — an ordered grid of envelopes, built on the same
  grid machinery as :meth:`repro.engine.Engine.sweep`.

The legacy per-function entry points (``multiparty_swap_test``,
``estimate_renyi_entropy``, ...) remain as thin wrappers over this layer
and emit :class:`DeprecationWarning`.
"""

from .experiment import KINDS, Experiment
from .result import API_VERSION, ExperimentResult
from .specs import (
    BACKENDS,
    EXECUTORS,
    GHZ_MODES,
    TOPOLOGIES,
    NetworkSpec,
    NoiseSpec,
    ProtocolSpec,
    QpuSpec,
    RunOptions,
    fresh_seed,
    stable_hash,
)
from .sweep import (
    ExperimentSweepPoint,
    SweepCheckpoint,
    SweepResult,
    iter_experiment_sweep,
    run_experiment_sweep,
)

__all__ = [
    "API_VERSION",
    "BACKENDS",
    "EXECUTORS",
    "GHZ_MODES",
    "KINDS",
    "TOPOLOGIES",
    "Experiment",
    "ExperimentResult",
    "ExperimentSweepPoint",
    "NetworkSpec",
    "NoiseSpec",
    "ProtocolSpec",
    "QpuSpec",
    "RunOptions",
    "SweepCheckpoint",
    "SweepResult",
    "fresh_seed",
    "iter_experiment_sweep",
    "run_experiment_sweep",
    "stable_hash",
]
