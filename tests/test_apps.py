"""Tests for the Section 6 applications."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    cooling_schedule_exact,
    distillation_error_exact,
    entanglement_spectroscopy,
    estimate_renyi_entropy,
    factor_polynomial,
    newton_girard_elementary,
    parallel_qsp_trace_exact,
    parallel_qsp_trace_sampled,
    renyi_entropy_exact,
    spectrum_from_power_sums,
    virtual_expectation,
    virtual_expectation_exact,
)
from repro.apps.qsp import apply_polynomial
from repro.utils import (
    ghz_state,
    noisy_pure_state,
    random_density_matrix,
    random_hermitian,
)

RNG = np.random.default_rng(55)


class TestRenyi:
    def test_exact_pure_state_zero_entropy(self):
        psi = np.array([1, 0], dtype=complex)
        rho = np.outer(psi, psi)
        assert renyi_entropy_exact(rho, 2) == pytest.approx(0.0, abs=1e-9)

    def test_exact_maximally_mixed(self):
        rho = np.eye(2) / 2
        assert renyi_entropy_exact(rho, 2) == pytest.approx(math.log(2))

    def test_exact_order_dependence(self):
        rho = np.diag([0.9, 0.1]).astype(complex)
        s2 = renyi_entropy_exact(rho, 2)
        s3 = renyi_entropy_exact(rho, 3)
        assert s3 < s2  # Renyi entropies decrease in order

    def test_order_validation(self):
        with pytest.raises(ValueError):
            renyi_entropy_exact(np.eye(2) / 2, 1)

    def test_estimated_matches_exact(self):
        rho = random_density_matrix(1, rng=RNG)
        result = estimate_renyi_entropy(rho, 2, shots=3000, seed=1, variant="b")
        assert abs(result.entropy - renyi_entropy_exact(rho, 2)) < 0.15

    def test_estimate_returns_metadata(self):
        rho = random_density_matrix(1, rng=RNG)
        result = estimate_renyi_entropy(rho, 3, shots=400, seed=2, variant="b")
        assert result.order == 3
        assert result.trace_result.k == 3


class TestSpectroscopy:
    def test_newton_girard_two_values(self):
        # lambda = {0.75, 0.25}: p1 = 1, p2 = 0.625.
        e = newton_girard_elementary([1.0, 0.625])
        assert e[0] == pytest.approx(1.0)
        assert e[1] == pytest.approx(0.1875)

    @given(
        st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=5
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_from_spectrum(self, raw):
        eigenvalues = np.array(raw) / np.sum(raw)
        # Near-degenerate roots are numerically ill-conditioned for
        # polynomial rooting; require modest separation, as the paper's
        # spectroscopy targets do.
        sorted_vals = np.sort(eigenvalues)
        if len(sorted_vals) > 1 and np.min(np.diff(sorted_vals)) < 0.02:
            return
        power_sums = [float(np.sum(eigenvalues**m)) for m in range(1, len(raw) + 1)]
        recovered = spectrum_from_power_sums(power_sums)
        assert np.allclose(np.sort(recovered), sorted_vals, atol=1e-5)

    def test_ghz_half_spectrum(self):
        result = entanglement_spectroscopy(ghz_state(2), [0], 2, exact=True)
        assert np.allclose(result.eigenvalues, [0.5, 0.5], atol=1e-9)

    def test_product_state_trivial_spectrum(self):
        psi = np.kron([1, 0], [1, 0]).astype(complex)
        result = entanglement_spectroscopy(psi, [0], 2, exact=True)
        assert result.eigenvalues[0] == pytest.approx(1.0, abs=1e-9)

    def test_sampled_spectroscopy_close(self):
        # The degenerate GHZ spectrum amplifies shot noise by a square root
        # (lambda = (1 +- sqrt(2 p2 - 1))/2), so the tolerance is loose.
        result = entanglement_spectroscopy(
            ghz_state(2), [0], 2, shots=6000, seed=3, variant="b"
        )
        assert abs(result.eigenvalues[0] - 0.5) < 0.2

    def test_entanglement_energies(self):
        result = entanglement_spectroscopy(ghz_state(2), [0], 2, exact=True)
        assert np.allclose(result.entanglement_energies, [math.log(2)] * 2, atol=1e-6)


class TestVirtual:
    def test_exact_matches_linear_algebra(self):
        rho = random_density_matrix(1, rng=RNG)
        z = np.diag([1, -1]).astype(complex)
        power = rho @ rho @ rho
        want = float(np.real(np.trace(z @ power) / np.trace(power)))
        assert virtual_expectation_exact(rho, "Z", 3) == pytest.approx(want)

    def test_circuit_path_matches_exact(self):
        rho = random_density_matrix(1, rng=RNG)
        result = virtual_expectation(rho, "Z", 2, exact_circuit=True)
        want = virtual_expectation_exact(rho, "Z", 2)
        assert result.value == pytest.approx(want, abs=1e-8)

    def test_sampled_path_close(self):
        rho = random_density_matrix(1, rng=RNG)
        result = virtual_expectation(rho, "Z", 2, shots=4000, seed=4, variant="b")
        want = virtual_expectation_exact(rho, "Z", 2)
        assert abs(result.value - want) < 0.15

    def test_cooling_monotone(self):
        h = random_hermitian(2, RNG)
        curve = cooling_schedule_exact(h, 0.4, [1, 2, 4, 8])
        energies = [e for _, e in curve]
        assert all(energies[i + 1] <= energies[i] + 1e-9 for i in range(3))

    def test_cooling_approaches_ground_state(self):
        h = np.diag([0.0, 1.0, 2.0, 3.0]).astype(complex)
        curve = cooling_schedule_exact(h, 0.5, [16])
        assert curve[0][1] < 0.1

    def test_distillation_error_shrinks(self):
        psi, noisy = noisy_pure_state(1, 0.3, RNG)
        curve = distillation_error_exact(psi, noisy, "Z", [1, 2, 4])
        errors = [e for _, e in curve]
        assert errors[2] < errors[0]

    def test_copies_validation(self):
        rho = random_density_matrix(1, rng=RNG)
        with pytest.raises(ValueError):
            virtual_expectation_exact(rho, "Z", 0)
        with pytest.raises(ValueError):
            virtual_expectation(rho, "Z", 1)


class TestParallelQsp:
    def test_factorisation_reconstructs_polynomial(self):
        coeffs = np.array([2.0, -1.0, 0.5, 0.25])
        factored = factor_polynomial(coeffs, 2)
        for x in np.linspace(-1, 1, 7):
            assert factored.evaluate(x) == pytest.approx(
                float(np.polyval(coeffs, x)), abs=1e-7
            )

    def test_factor_degrees_balanced(self):
        coeffs = np.polynomial.polynomial.polyfromroots([0.1, 0.2, 0.3, 0.4])[::-1]
        factored = factor_polynomial(np.array(coeffs), 2)
        assert factored.max_factor_degree == 2

    def test_factors_are_real(self):
        coeffs = np.array([1.0, 0.0, 1.0])  # x^2 + 1, complex roots
        factored = factor_polynomial(coeffs, 1)
        assert all(np.isrealobj(f) for f in factored.factors)

    def test_too_many_factors_rejected(self):
        with pytest.raises(ValueError):
            factor_polynomial(np.array([1.0, 0.0]), 5)

    def test_apply_polynomial(self):
        rho = random_density_matrix(1, rng=RNG)
        out = apply_polynomial(rho, np.array([1.0, 2.0, 3.0]))
        want = rho @ rho + 2 * rho + 3 * np.eye(2)
        assert np.allclose(out, want)

    def test_exact_trace_matches_direct(self):
        rho = random_density_matrix(1, rng=RNG)
        coeffs = np.array([1.0, 0.0, 0.5, 0.0, 0.2])
        factored = factor_polynomial(coeffs, 2)
        got = parallel_qsp_trace_exact(rho, factored)
        eigenvalues = np.linalg.eigvalsh(rho)
        want = float(np.sum(np.polyval(coeffs, eigenvalues)))
        assert got == pytest.approx(want, abs=1e-8)

    def test_sampled_trace_close(self):
        rho = random_density_matrix(1, rng=RNG)
        coeffs = np.array([1.0, 0.0, 0.5, 0.0, 0.2])  # PSD factors
        factored = factor_polynomial(coeffs, 2)
        estimate, exact = parallel_qsp_trace_sampled(
            rho, factored, shots=3000, seed=5, variant="b"
        )
        assert abs(estimate - exact) < 0.3

    def test_sampled_rejects_non_psd(self):
        rho = random_density_matrix(1, rng=RNG)
        coeffs = np.polynomial.polynomial.polyfromroots([0.3, 0.6])[::-1]
        factored = factor_polynomial(np.array(coeffs), 2)
        with pytest.raises(ValueError):
            parallel_qsp_trace_sampled(rho, factored, shots=10)
