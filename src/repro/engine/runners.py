"""Per-backend batch executors.

A *batch* is the engine's unit of parallel work: ``shots`` trajectories of
one job driven by an RNG derived solely from ``(job.seed, batch.index)``.
Because the substream never depends on which worker runs the batch — or on
how many workers exist — and batch statistics are combined in index order
with exact floating-point sums (parities are ±1), the engine's results are
bit-identical for any worker count.

``execute_batch`` is a module-level function taking only picklable
arguments, so the scheduler can dispatch it to thread *or* process pools.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..sim.density import DensitySimulator
from ..sim.pauliframe import PauliFrameSimulator
from ..sim.statevector import StatevectorSimulator
from ..sim.tableau import TableauSimulator
from ..utils.states import assemble_initial_state
from .job import Job

__all__ = ["Batch", "BatchStats", "batch_rng", "execute_batch"]


@dataclass(frozen=True)
class Batch:
    """One slice of a job's shot budget."""

    index: int
    shots: int


@dataclass
class BatchStats:
    """Order-independent aggregates of one batch."""

    index: int
    shots: int
    counts: Counter = field(default_factory=Counter)
    parity_total: float = 0.0
    parity_total_sq: float = 0.0
    probabilities: dict[str, float] | None = None


def batch_rng(seed: int, index: int) -> np.random.Generator:
    """The deterministic RNG substream of batch ``index`` of a job."""
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=(index,))
    )


def _sample_initial_state(job: Job, rng: np.random.Generator) -> np.ndarray | None:
    """Draw one shot's initial state (None means |0...0>)."""
    if not job.ensembles:
        return job.initial_state
    placements = {}
    for ens in job.ensembles:
        if ens.is_deterministic:
            index = 0
        else:
            index = int(rng.choice(len(ens.weights), p=ens.weights))
        placements[ens.qubits] = ens.vector(index)
    return assemble_initial_state(job.circuit.num_qubits, placements)


def _parity(clbits: list[int], readout: tuple[int, ...]) -> int:
    acc = 0
    for c in readout:
        acc ^= clbits[c] & 1
    return acc


def execute_batch(job: Job, batch: Batch, backend: str) -> BatchStats:
    """Run one batch on the routed backend, returning its aggregates."""
    if backend == "statevector":
        return _statevector_batch(job, batch)
    if backend == "tableau":
        return _tableau_batch(job, batch)
    if backend == "pauliframe":
        return _pauliframe_batch(job, batch)
    if backend == "density":
        return _density_batch(job, batch)
    raise ValueError(f"unknown backend {backend!r}")


def _accumulate(stats: BatchStats, clbits: list[int], job: Job) -> None:
    stats.counts["".join(str(b) for b in clbits)] += 1
    if job.readout:
        value = 1.0 - 2.0 * _parity(clbits, job.readout)
        stats.parity_total += value
        stats.parity_total_sq += value * value


def _statevector_batch(job: Job, batch: Batch) -> BatchStats:
    rng = batch_rng(job.seed, batch.index)
    simulator = StatevectorSimulator(seed=int(rng.integers(2**63)), noise=job.noise)
    stats = BatchStats(index=batch.index, shots=batch.shots)
    for _ in range(batch.shots):
        init = _sample_initial_state(job, rng)
        result = simulator.run(job.circuit, initial_state=init)
        _accumulate(stats, result.clbits, job)
    return stats


def _tableau_batch(job: Job, batch: Batch) -> BatchStats:
    rng = batch_rng(job.seed, batch.index)
    stats = BatchStats(index=batch.index, shots=batch.shots)
    for _ in range(batch.shots):
        simulator = TableauSimulator(job.circuit.num_qubits, seed=rng)
        clbits = simulator.run(job.circuit)
        _accumulate(stats, clbits, job)
    return stats


def _pauliframe_batch(job: Job, batch: Batch) -> BatchStats:
    rng = batch_rng(job.seed, batch.index)
    simulator = PauliFrameSimulator(
        job.circuit, job.noise, seed=int(rng.integers(2**63))
    )
    counts = simulator.sample_error_distribution(list(job.frame_qubits), batch.shots)
    return BatchStats(index=batch.index, shots=batch.shots, counts=Counter(counts))


def _density_batch(job: Job, batch: Batch) -> BatchStats:
    if job.ensembles:
        raise ValueError("exact mode takes a fixed initial state, not ensembles")
    simulator = DensitySimulator(noise=job.noise)
    result = simulator.run(job.circuit, initial_state=job.initial_state)
    probabilities = {
        "".join(str(b) for b in bits): p
        for bits, p in result.branch_probabilities().items()
    }
    stats = BatchStats(
        index=batch.index, shots=batch.shots, probabilities=probabilities
    )
    if job.readout:
        mean = 0.0
        for bits, p in result.branch_probabilities().items():
            mean += p * (1.0 - 2.0 * _parity(list(bits), job.readout))
        stats.parity_total = mean
    return stats
