"""Engine scaling: vectorized kernel speedup, worker fan-out, result cache.

Demonstrates the headline properties of the execution engine on a
multi-shot SWAP-test job:

* **compiled + vectorized execution** — the same job runs through the
  per-shot reference interpreter (``backend="statevector-ref"``) and the
  compiled/vectorized batch kernel (the default ``statevector`` backend);
  the kernel must deliver **>= 5x** the reference throughput at equal shots
  (the acceptance bar of the compiled-core refactor; typically 20-40x).
* **scaling** — the same job partitioned into batches runs on 1 worker and
  on a multi-worker process pool, producing *bit-identical* estimates; with
  more than one CPU available the pool reduces wall time.
* **caching** — re-running an identical job is served from the result cache
  (hit counter increments, no new shots are executed) and is orders of
  magnitude faster than recomputation.
"""

import numpy as np
from conftest import cpu_count, emit, scaled, stopwatch

from repro.core import build_monolithic_swap_test, swap_test_job
from repro.engine import Engine
from repro.reporting import Table
from repro.utils import random_density_matrix

SHOTS = scaled(full=20_000, quick=6_000, smoke=1_500)
CPUS = cpu_count()
POOL_WORKERS = max(2, min(4, CPUS))

#: Acceptance bar: compiled/vectorized statevector throughput over the
#: per-shot reference interpreter at equal shots.
KERNEL_SPEEDUP_FLOOR = 5.0


def make_job(seed: int = 404, backend: str | None = None):
    rng = np.random.default_rng(77)
    build = build_monolithic_swap_test(3, 1, variant="b", basis="x")
    states = [random_density_matrix(1, rng=rng) for _ in range(3)]
    return swap_test_job(build, states, SHOTS, seed, batch_size=250, backend=backend)


def test_engine_scaling(once):
    table = Table(
        f"Engine scaling — {SHOTS}-shot SWAP-test job ({CPUS} CPU(s) visible)",
        ["configuration", "wall_time_s", "shots_per_s", "estimate", "note"],
    )
    cached_engine = Engine(workers=1, cache=True)

    def run():
        rows = {}
        with Engine(workers=1) as serial:
            with stopwatch() as ref_time:
                rows["reference"] = serial.run(make_job(backend="statevector-ref"))
            rows["reference_time"] = ref_time()
            with stopwatch() as serial_time:
                rows["serial"] = serial.run(make_job())
            rows["serial_time"] = serial_time()
        with Engine(workers=POOL_WORKERS, executor="process") as pool, \
                stopwatch() as pool_time:
            rows["pool"] = pool.run(make_job())
        rows["pool_time"] = pool_time()
        with stopwatch() as cold_time:
            rows["cold"] = cached_engine.run(make_job())
        rows["cold_time"] = cold_time()
        with stopwatch() as warm_time:
            rows["warm"] = cached_engine.run(make_job())
        rows["warm_time"] = warm_time()
        return rows

    rows = once(run)
    kernel_speedup = rows["reference_time"] / max(rows["serial_time"], 1e-9)
    pool_speedup = rows["serial_time"] / max(rows["pool_time"], 1e-9)
    cache_speedup = rows["cold_time"] / max(rows["warm_time"], 1e-9)

    def throughput(key):
        return f"{SHOTS / max(rows[key], 1e-9):,.0f}"

    table.add_row(
        configuration="per-shot reference (1 worker)",
        wall_time_s=rows["reference_time"],
        shots_per_s=throughput("reference_time"),
        estimate=f"{rows['reference'].parity_mean:.5f}",
        note="statevector-ref backend",
    )
    table.add_row(
        configuration="vectorized kernel (1 worker)",
        wall_time_s=rows["serial_time"],
        shots_per_s=throughput("serial_time"),
        estimate=f"{rows['serial'].parity_mean:.5f}",
        note=(
            f"compiled batch kernel, x{kernel_speedup:.1f} vs reference "
            f"(compile {rows['serial'].compile_time * 1e3:.1f}ms / "
            f"execute {rows['serial'].execute_time * 1e3:.1f}ms)"
        ),
    )
    table.add_row(
        configuration=f"{POOL_WORKERS} workers (process pool)",
        wall_time_s=rows["pool_time"],
        shots_per_s=throughput("pool_time"),
        estimate=f"{rows['pool'].parity_mean:.5f}",
        note=f"speedup x{pool_speedup:.2f} over 1-worker kernel",
    )
    table.add_row(
        configuration="cache cold",
        wall_time_s=rows["cold_time"],
        shots_per_s=throughput("cold_time"),
        estimate=f"{rows['cold'].parity_mean:.5f}",
        note="computed + stored",
    )
    table.add_row(
        configuration="cache warm",
        wall_time_s=rows["warm_time"],
        shots_per_s=throughput("warm_time"),
        estimate=f"{rows['warm'].parity_mean:.5f}",
        note=f"served from cache, x{cache_speedup:.0f} faster",
    )
    emit(
        "engine_scaling",
        table,
        wall_time=sum(
            rows[k]
            for k in ("reference_time", "serial_time", "pool_time", "cold_time", "warm_time")
        ),
        engine=cached_engine,
    )

    # Compiled-core acceptance: the vectorized kernel clears the 5x bar.
    assert kernel_speedup >= KERNEL_SPEEDUP_FLOOR
    # Determinism: worker count never changes the bits.
    assert rows["pool"].parity_mean == rows["serial"].parity_mean
    assert rows["pool"].parity_stderr == rows["serial"].parity_stderr
    # Caching: the repeated job is a hit and skips recomputation.
    assert rows["warm"].from_cache and not rows["cold"].from_cache
    assert rows["warm"].parity_mean == rows["cold"].parity_mean
    assert cached_engine.cache.stats.hits == 1
    assert rows["warm_time"] < rows["cold_time"]
    # Scaling: with real parallel hardware, more workers reduce wall time.
    # The kernel is so much faster than the old per-shot path that pool
    # startup can dominate at quick scale, so the bar stays advisory: only
    # enforce that the pool is not catastrophically slower.
    if CPUS > 1:
        assert rows["pool_time"] < rows["serial_time"] * 25
    cached_engine.close()
