"""The Engine facade: the single entry point for all shot execution.

Layers (each independently testable):

* :class:`~repro.engine.job.Job` / :class:`~repro.engine.job.JobResult` —
  content-hashed work spec and aggregated outcome;
* :class:`~repro.engine.router.BackendRouter` — picks the cheapest capable
  simulator per job;
* :class:`~repro.engine.scheduler.Scheduler` — splits shots into batches
  and fans them across a worker pool, deterministically;
* :class:`~repro.engine.cache.ResultCache` — in-memory + on-disk result
  store keyed on the job hash.

``Engine(workers=1, cache=False)`` is exactly the legacy direct path: one
worker, no cache, same batch partition — and therefore the same bits.

Cross-job pipelining: :meth:`Engine.run_many` and :meth:`Engine.sweep`
submit *all* batches of *all* non-cached jobs to the shared pool at once
(futures keyed by ``(job_index, batch_index)``) and reduce each job in
batch-index order as its futures complete, so a sweep of many small jobs
keeps every worker busy across job boundaries instead of draining the
pool at each job's tail.  RNG substreams depend only on
``(job.seed, batch.index)``, so the pipelined results are bit-identical
to the per-job serial path at any worker count.  :meth:`Engine.as_completed`
exposes the same machinery as a stream, yielding ``(index, result)`` pairs
in completion order for incremental progress reporting.
"""

from __future__ import annotations

import itertools
import logging
import math
import threading
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, FIRST_EXCEPTION, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Mapping, Sequence

import numpy as np

from ..obs.runtime import NOOP, Observability
from .cache import ResultCache
from .cancel import CancelToken, JobCancelled
from .costmodel import CostModel, DispatchPlan
from .job import Job, JobResult
from .router import BackendChoice, BackendRouter
from .runners import (
    BatchExecutionError,
    BatchStats,
    WorkerJobMiss,
    execute_batch,
    execute_batch_outcomes,
)
from .scheduler import Scheduler
from .shm import OutcomeMatrix, SharedOutcomeBuffer

__all__ = ["Engine", "EngineStats", "SweepPoint", "grid_points"]

_log = logging.getLogger("repro.engine")


def grid_points(grid: Mapping[str, Sequence]):
    """Yield the cartesian product of ``grid`` as parameter dicts.

    Row-major order of the grid's keys — the ordering contract shared by
    :meth:`Engine.sweep` and :meth:`repro.api.Experiment.sweep`.
    """
    keys = list(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


@dataclass
class EngineStats:
    """Cumulative execution statistics of one engine.

    Two time totals with different meanings, both reported:

    * ``wall_time`` sums each job's own elapsed time; under cross-job
      pipelining jobs overlap, so this total can exceed the actual wall
      clock (it measures work, not latency);
    * ``elapsed`` is the true wall clock, measured at the outermost
      ``run``/``run_many``/``sweep`` call (nested calls are not double
      counted) — the denominator for throughput (``shots / elapsed``).
    """

    jobs: int = 0
    cached_jobs: int = 0
    shots: int = 0
    wall_time: float = 0.0
    elapsed: float = 0.0
    compile_time: float = 0.0
    execute_time: float = 0.0
    backends: Counter = field(default_factory=Counter)

    @property
    def shots_per_second(self) -> float:
        """Throughput over the true wall clock (0.0 before any run)."""
        return self.shots / self.elapsed if self.elapsed > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-safe dict (cache stats are merged in by the engine)."""
        return {
            "jobs": self.jobs,
            "cached_jobs": self.cached_jobs,
            "shots": self.shots,
            "wall_time": self.wall_time,
            "elapsed": self.elapsed,
            "shots_per_second": self.shots_per_second,
            "compile_time": self.compile_time,
            "execute_time": self.execute_time,
            "backends": dict(self.backends),
        }


@dataclass
class SweepPoint:
    """One grid point of a parameter sweep."""

    params: dict
    result: JobResult


@dataclass
class _PendingJob:
    """In-flight bookkeeping of one pipelined job."""

    job: Job
    key: str
    choice: BackendChoice
    expected: int
    started: float
    stats: list[BatchStats] = field(default_factory=list)
    span: object = None  # the job's open trace span (noop when disabled)
    program: object = None  # parent-compiled program (WorkerJobMiss retries)


class Engine:
    """Batched, cached, backend-routed shot execution.

    ``cache`` may be ``True`` (in-memory), ``False``/``None`` (disabled), a
    path (in-memory + on-disk), or a ready :class:`ResultCache`.
    """

    def __init__(
        self,
        workers: int = 1,
        executor: str = "thread",
        cache: bool | str | ResultCache | None = False,
        router: BackendRouter | None = None,
        obs: Observability | None = None,
        cost_model: CostModel | None = None,
    ):
        self.scheduler = Scheduler(
            workers=workers, executor=executor, cost_model=cost_model
        )
        self.router = router or BackendRouter()
        if isinstance(cache, ResultCache):
            self.cache: ResultCache | None = cache
        elif cache is True:
            self.cache = ResultCache()
        elif cache:
            self.cache = ResultCache(directory=cache)
        else:
            self.cache = None
        self.stats = EngineStats()
        #: Per-thread state: top-level call nesting (for EngineStats.elapsed)
        #: and the active cancel scope.  Thread-local so concurrent engine
        #: calls (the multi-tenant service) neither corrupt the depth guard
        #: nor see each other's cancel tokens.
        self._tls = threading.local()
        self._stats_lock = threading.Lock()
        #: Cross-call single flight: job hashes currently being computed
        #: by some thread, each mapped to the event its joiners wait on.
        #: This is what lets concurrent tenants on a shared service
        #: engine compute identical jobs exactly once.
        self._inflight: dict[str, threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self.obs = NOOP
        self.set_observability(obs)

    def set_observability(self, obs: Observability | None) -> None:
        """Install (or, with None, disable) tracing/metrics on this engine.

        Propagates the bundle to the scheduler and the cache, so batch
        submission ships trace contexts and cache lookups are tagged.
        """
        self.obs = obs if obs is not None else NOOP
        self.scheduler.obs = self.obs
        if self.cache is not None:
            self.cache.obs = self.obs

    def prewarm(self) -> list[int]:
        """Spin up process-pool workers ahead of the first submission.

        Returns the distinct worker PIDs that answered (empty when there is
        no process pool to warm).  Purely a latency optimisation — calling
        it keeps pool start-up cost out of the first job's critical path
        (and out of benchmark timing windows).
        """
        return self.scheduler.prewarm()

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    @contextmanager
    def cancel_scope(self, token: CancelToken | None):
        """Apply ``token`` to every engine call on this thread in the block.

        The form a serving layer uses when the engine calls happen deep
        inside library code (:meth:`repro.api.Experiment.run`) that has no
        ``cancel=`` parameter to thread through.  Scopes nest; the
        innermost wins.  ``None`` is accepted and means "no scope".
        """
        previous = getattr(self._tls, "cancel", None)
        self._tls.cancel = token if token is not None else previous
        try:
            yield token
        finally:
            self._tls.cancel = previous

    def _cancel_for(self, explicit: CancelToken | None) -> CancelToken | None:
        """The effective token: the explicit one, else the thread's scope."""
        if explicit is not None:
            return explicit
        return getattr(self._tls, "cancel", None)

    # ------------------------------------------------------------------
    # Single flight (cross-call dedupe on the shared cache)
    # ------------------------------------------------------------------
    def _try_claim(self, key: str) -> tuple[bool, threading.Event | None]:
        """Claim ``key``'s computation, or return the owner's event.

        ``(True, None)`` means this thread owns the flight and must call
        :meth:`_release` when the result is stored (or the attempt is
        abandoned).  ``(False, event)`` means another thread is already
        computing this hash; wait on ``event`` and read the cache.  With
        no cache there is nothing to share, so every caller owns.
        """
        if self.cache is None:
            return True, None
        with self._inflight_lock:
            event = self._inflight.get(key)
            if event is None:
                self._inflight[key] = threading.Event()
                return True, None
            return False, event

    def _release(self, key: str) -> None:
        """End ``key``'s flight and wake its joiners (idempotent)."""
        if self.cache is None:
            return
        with self._inflight_lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()

    def _join(self, event: threading.Event, cancel: CancelToken | None) -> None:
        """Wait for another thread's flight, staying cancel-responsive."""
        if cancel is None:
            event.wait()
            return
        while not event.wait(0.05):
            cancel.raise_if_cancelled()

    def _compute_singleflight(
        self,
        job: Job,
        key: str,
        parent_id: str | None,
        cancel: CancelToken | None,
    ) -> JobResult:
        """Compute one job, joining a concurrent identical computation.

        The joiner is served from cache the moment the owner stores; if
        the owner aborts without storing (failure, cancellation), the
        joiner claims the flight itself and computes.
        """
        while True:
            owned, event = self._try_claim(key)
            if owned:
                try:
                    return self._run_uncached(
                        job, key, parent_id=parent_id, cancel=cancel
                    )
                finally:
                    self._release(key)
            self._join(event, cancel)
            hit = self._cache_hit(key, parent_id=parent_id)
            if hit is not None:
                return hit

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, job: Job, *, cancel: CancelToken | None = None) -> JobResult:
        """Execute one job (or serve it from cache).

        ``cancel`` (or an enclosing :meth:`cancel_scope`) cooperatively
        aborts between batches with
        :class:`~repro.engine.cancel.JobCancelled`.
        """
        cancel = self._cancel_for(cancel)
        with self._toplevel():
            if cancel is not None:
                cancel.raise_if_cancelled()
            key = job.content_hash()
            tracer = self.obs.tracer
            span = tracer.begin("engine.run", job_hash=key[:16], shots=job.shots)
            error = None
            try:
                hit = self._cache_hit(key, parent_id=span.span_id)
                if hit is not None:
                    span.set("cache", "hit")
                    return hit
                return self._compute_singleflight(job, key, span.span_id, cancel)
            except BaseException as exc:
                error = exc
                raise
            finally:
                tracer.end(span, error=error)

    def run_many(
        self,
        jobs: Sequence[Job],
        *,
        pipeline: bool = True,
        cancel: CancelToken | None = None,
    ) -> list[JobResult]:
        """Execute several jobs; all jobs' batches share the worker pool.

        With ``pipeline=True`` (the default) every batch of every
        non-cached job is submitted to the pool at once, so small jobs
        cannot leave workers idle at job boundaries.  ``pipeline=False``
        keeps the historical one-job-at-a-time path.  Both are
        bit-identical at equal seeds for any worker count.
        """
        jobs = list(jobs)
        if not pipeline:
            with self._toplevel():
                return [self.run(job, cancel=cancel) for job in jobs]
        results: list[JobResult | None] = [None] * len(jobs)
        for index, result in self.as_completed(jobs, cancel=cancel):
            results[index] = result
        return results

    def as_completed(
        self, jobs: Sequence[Job], *, cancel: CancelToken | None = None
    ) -> Iterator[tuple[int, JobResult]]:
        """Yield ``(job_index, JobResult)`` pairs in completion order.

        Cache hits are yielded immediately; the remaining jobs' batches
        are all submitted to the pool at once and each job is reduced (in
        batch-index order) the moment its last batch lands, so long sweeps
        can report progress incrementally.  When the cache is enabled,
        duplicate jobs inside one call are computed once and the repeats
        served as cache hits — exactly what the serial path would do.
        Duplicates *across* concurrent calls (two tenants of a shared
        service engine sweeping overlapping grids) are deduped the same
        way: a job some other thread is already computing is joined and
        served from the cache when that computation stores, so identical
        physics is computed exactly once engine-wide.
        Under pipelining a job's ``elapsed`` is its submission-to-reduce
        latency on the shared pool (batches of different jobs interleave),
        not the time a dedicated pool would have needed.

        On the first batch failure every outstanding future is cancelled
        and drained, then a
        :class:`~repro.engine.runners.BatchExecutionError` naming the
        failed ``(job_index, batch_index)`` propagates.  A tripped
        ``cancel`` token likewise cancels and drains, then raises
        :class:`~repro.engine.cancel.JobCancelled` — the service's
        ``DELETE /jobs/{id}`` path.
        """
        jobs = list(jobs)
        cancel = self._cancel_for(cancel)
        with self._toplevel():
            tracer = self.obs.tracer
            root = tracer.begin(
                "engine.run_many",
                jobs=len(jobs),
                workers=self.scheduler.workers,
                executor=self.scheduler.executor_kind,
                pooled=self.scheduler.pooled,
            )
            error = None
            try:
                yield from self._as_completed(jobs, root.span_id, cancel)
            except BaseException as exc:
                error = exc
                raise
            finally:
                tracer.end(root, error=error)

    def _as_completed(
        self, jobs: list[Job], parent_id: str | None, cancel: CancelToken | None = None
    ) -> Iterator[tuple[int, JobResult]]:
        if cancel is not None:
            cancel.raise_if_cancelled()
        pending: list[tuple[int, Job, str]] = []
        pending_keys: set[str] = set()
        for index, job in enumerate(jobs):
            key = job.content_hash()
            if key in pending_keys:
                # A known in-flight duplicate: skip the redundant lookup
                # (and its miss counter) — it will be served after the
                # first occurrence computes, like on the serial path.
                pending.append((index, job, key))
                continue
            hit = self._cache_hit(key, parent_id=parent_id)
            if hit is not None:
                yield index, hit
            else:
                pending.append((index, job, key))
                pending_keys.add(key)
        if not pending:
            return
        if not self.scheduler.pooled:
            computed: set[str] = set()
            for index, job, key in pending:
                if key in computed:
                    # Same dedupe contract as the pooled pipeline: repeats
                    # of a job computed in this call are served from cache.
                    yield index, self._cache_hit(key, parent_id=parent_id)
                    continue
                yield index, self._compute_singleflight(job, key, parent_id, cancel)
                if self.cache is not None:
                    computed.add(key)
            return
        yield from self._pipeline(pending, parent_id, cancel)

    def sweep(
        self,
        make_job: Callable[..., Job],
        grid: Mapping[str, Sequence],
        *,
        pipeline: bool = True,
        cancel: CancelToken | None = None,
    ) -> list[SweepPoint]:
        """Run ``make_job(**params)`` over the cartesian product of ``grid``.

        Returns one :class:`SweepPoint` per grid point, in row-major order
        of the grid's keys.  All points' batches share the worker pool
        (see :meth:`run_many`).
        """
        params_list = list(grid_points(grid))
        jobs = [make_job(**params) for params in params_list]
        with self._toplevel():
            results = self.run_many(jobs, pipeline=pipeline, cancel=cancel)
        return [
            SweepPoint(params=params, result=result)
            for params, result in zip(params_list, results)
        ]

    def sample_outcomes(
        self,
        job: Job,
        *,
        forced_outcomes: tuple[int, ...] | None = None,
        cancel: CancelToken | None = None,
    ) -> OutcomeMatrix:
        """Every shot's classical register as one ``(shots, num_clbits)`` matrix.

        The cross-validation surface: rows come from exactly the RNG
        substreams the aggregate path consumes, so a ``Counter`` over the
        rows equals :meth:`run`'s counts at equal seeds, and row order is
        the deterministic batch-partition order.  On a process pool each
        batch writes its rows into one shared-memory segment *in place*
        (nothing crosses the IPC boundary by value); the returned handle
        owns the segment — use it as a context manager, or ``close()`` it,
        and take :meth:`~repro.engine.shm.OutcomeMatrix.copy` for data that
        must outlive the handle.

        ``forced_outcomes`` forces collapse outcomes in program order for
        every shot (the batched analogue of the reference interpreter's
        branch forcing).
        """
        cancel = self._cancel_for(cancel)
        if job.mode == "exact":
            raise ValueError("exact-mode jobs have no per-shot outcomes to sample")
        if job.ensembles:
            raise ValueError(
                "outcome matrices require a fixed initial state; ensemble draws "
                "are grouped by component and would reorder rows"
            )
        choice = self.router.select(job)
        backend = (
            choice.name
            if choice.name in ("statevector", "statevector-ref")
            else "statevector"
        )
        batches = self.scheduler.plan(job)
        offsets = []
        offset = 0
        for batch in batches:
            offsets.append(offset)
            offset += batch.shots
        num_clbits = job.circuit.num_clbits
        pooled = self.scheduler.process_pooled and len(batches) > 1
        tracer = self.obs.tracer
        span = tracer.begin(
            "engine.outcomes", shots=job.shots, backend=backend, shared=pooled
        )
        error = None
        try:
            if not pooled:
                matrix = np.zeros((job.shots, num_clbits), dtype=np.uint8)
                for batch, row_offset in zip(batches, offsets):
                    if cancel is not None:
                        cancel.raise_if_cancelled()
                    piece = execute_batch_outcomes(
                        job,
                        batch,
                        backend,
                        row_offset=row_offset,
                        forced_outcomes=forced_outcomes,
                    )
                    matrix[row_offset : row_offset + batch.shots] = piece.clbits
                return OutcomeMatrix(matrix)
            if cancel is not None:
                cancel.raise_if_cancelled()
            buffer = SharedOutcomeBuffer.create(job.shots, num_clbits)
            try:
                futures = [
                    self.scheduler.submit_outcomes(
                        job,
                        batch,
                        backend,
                        row_offset=row_offset,
                        shm_spec=buffer.spec(),
                        forced_outcomes=forced_outcomes,
                    )
                    for batch, row_offset in zip(batches, offsets)
                ]
                done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
                failed = next(
                    (
                        f
                        for f in done
                        if not f.cancelled() and f.exception() is not None
                    ),
                    None,
                )
                if failed is not None:
                    self.scheduler.cancel_and_drain(not_done)
                    exc = failed.exception()
                    raise BatchExecutionError(
                        f"outcome batch failed on backend {backend!r}: {exc}"
                    ) from exc
            except BaseException:
                buffer.close()
                raise
            return OutcomeMatrix(buffer.array, buffer)
        except BaseException as exc:
            error = exc
            raise
        finally:
            tracer.end(span, error=error)

    @contextmanager
    def _toplevel(self):
        """Accumulate ``stats.elapsed`` on the outermost engine call only.

        ``sweep`` → ``run_many`` → ``as_completed`` all pass through here;
        the depth guard (per thread, so concurrent service calls do not
        corrupt each other's nesting) makes sure true wall clock is
        counted exactly once per user-facing call, never summed across
        the nesting.
        """
        depth = getattr(self._tls, "depth", 0)
        self._tls.depth = depth + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            self._tls.depth = depth
            if depth == 0:
                with self._stats_lock:
                    self.stats.elapsed += time.perf_counter() - start

    # ------------------------------------------------------------------
    # Pipelined execution internals
    # ------------------------------------------------------------------
    def _pipeline(
        self, pending, parent_id: str | None = None, cancel: CancelToken | None = None
    ) -> Iterator[tuple[int, JobResult]]:
        """Fan all batches of all pending jobs across the shared pool."""
        # Within-run dedupe: with a cache, one computation per distinct
        # hash; repeats are served from cache when the original finishes
        # (matching the serial path's behaviour and counters).
        duplicates: dict[str, list[int]] = {}
        submit: list[tuple[int, Job, str]] = []
        if self.cache is not None:
            first_for: dict[str, int] = {}
            for index, job, key in pending:
                if key in first_for:
                    duplicates.setdefault(key, []).append(index)
                else:
                    first_for[key] = index
                    submit.append((index, job, key))
        else:
            submit = pending

        # Cross-call single flight: a key some other thread is already
        # computing is joined (awaited after our own work, then served
        # from cache) instead of recomputed — the cross-tenant dedupe a
        # shared service engine relies on.  Claims are released the
        # moment each job's result is stored, so joiners never wait past
        # the store.
        owned: list[tuple[int, Job, str]] = []
        joined: list[tuple[tuple[int, Job, str], threading.Event]] = []
        claimed: set[str] = set()
        for entry in submit:
            is_owner, event = self._try_claim(entry[2])
            if is_owner:
                owned.append(entry)
                if self.cache is not None:
                    claimed.add(entry[2])
            else:
                joined.append((entry, event))

        # Routing and dispatch planning happen up front so a bad job fails
        # before anything runs.  Density jobs are not picklable work units,
        # and jobs the cost model judges smaller than one dispatch round
        # trip gain nothing from the pool: both run inline on the calling
        # thread, overlapping the pooled futures.
        routed = [(index, job, key, self.router.select(job)) for index, job, key in owned]
        process_pool = self.scheduler.process_pooled
        inline: list[tuple] = []
        pooled: list[tuple] = []
        for index, job, key, choice in routed:
            if choice.name == "density":
                inline.append((index, job, key, choice))
                continue
            batches = self.scheduler.plan(job)
            if process_pool:
                plan = self.scheduler.decide(job, choice.name, len(batches))
            else:
                plan = DispatchPlan(pooled=True, per_batch=True)
            if not plan.pooled:
                inline.append((index, job, key, choice))
                continue
            pooled.append((index, job, key, choice, plan, batches))

        tracer = self.obs.tracer
        states: dict[int, _PendingJob] = {}
        future_map: dict = {}
        try:
            # Submission happens inside the try so a mid-loop failure
            # (e.g. a broken process pool) still cancels what went in.
            for index, job, key, choice, plan, batches in pooled:
                if cancel is not None:
                    cancel.raise_if_cancelled()
                job_span = tracer.begin(
                    "engine.job",
                    parent_id=parent_id,
                    job_hash=key[:16],
                    backend=choice.name,
                    shots=job.shots,
                    batches=len(batches),
                )
                state = _PendingJob(
                    job=job,
                    key=key,
                    choice=choice,
                    expected=len(batches),
                    started=time.perf_counter(),
                    span=job_span,
                )
                states[index] = state
                if plan.per_batch:
                    for batch in batches:
                        ctx = tracer.batch_context(job_span.span_id) if tracer.enabled else None
                        future = self.scheduler.submit(job, batch, choice.name, trace=ctx)
                        future_map[future] = (index, (batch,), ctx, time.perf_counter())
                else:
                    # Warm-worker group dispatch: payload + compiled program
                    # ride the first `workers` groups, later groups go
                    # key-only (WorkerJobMiss retries re-ship the payload).
                    state.program = self.scheduler.compiled_for(job, choice.name)
                    groups = plan.split(batches)
                    state.expected = len(groups)
                    warm = min(len(groups), self.scheduler.workers)
                    for position, group in enumerate(groups):
                        ctx = tracer.batch_context(job_span.span_id) if tracer.enabled else None
                        future = self.scheduler.submit_group(
                            job,
                            key,
                            group,
                            choice.name,
                            trace=ctx,
                            program=state.program if position < warm else None,
                            ship_job=position < warm,
                        )
                        future_map[future] = (index, group, ctx, time.perf_counter())
            # Inline jobs (density, cost-model-vetoed) run here while the
            # pool chews on the submitted batches.
            for index, job, key, choice in inline:
                job_start = time.perf_counter()
                job_span = tracer.begin(
                    "engine.job",
                    parent_id=parent_id,
                    job_hash=key[:16],
                    backend=choice.name,
                    shots=job.shots,
                )
                batch_stats = []
                for batch in self.scheduler.plan(job):
                    if cancel is not None:
                        cancel.raise_if_cancelled()
                    if tracer.enabled:
                        ctx = tracer.batch_context(job_span.span_id)
                        stats = execute_batch(job, batch, choice.name, trace=ctx)
                        tracer.adopt(stats.spans, parent_id=job_span.span_id)
                    else:
                        stats = execute_batch(job, batch, choice.name)
                    batch_stats.append(stats)
                result = self._finish(
                    job,
                    key,
                    choice,
                    batch_stats,
                    time.perf_counter() - job_start,
                    parent_id=job_span.span_id,
                )
                tracer.end(job_span)
                self._release(key)
                claimed.discard(key)
                yield index, result
                yield from self._serve_duplicates(duplicates, key, parent_id)

            # Streaming reduce over a mutable pending set (not a fixed
            # as_completed iterable) so WorkerJobMiss retries can join the
            # stream mid-flight.
            pending_futures = set(future_map)
            while pending_futures:
                done, pending_futures = wait(
                    pending_futures, return_when=FIRST_COMPLETED
                )
                for future in done:
                    if cancel is not None and cancel.cancelled:
                        # The except-handler below cancels every queued
                        # batch and drains the running ones before this
                        # propagates.
                        raise JobCancelled("job cancelled by its cancel token")
                    index, group, ctx, submitted = future_map.pop(future)
                    state = states[index]
                    exc = future.exception()
                    if exc is not None:
                        if isinstance(exc, WorkerJobMiss):
                            retry = self.scheduler.submit_group(
                                state.job,
                                state.key,
                                group,
                                state.choice.name,
                                trace=ctx,
                                program=state.program,
                                ship_job=True,
                            )
                            future_map[retry] = (index, group, ctx, time.perf_counter())
                            pending_futures.add(retry)
                            continue
                        if len(group) == 1:
                            desc = f"batch {group[0].index} ({group[0].shots} shots)"
                        else:
                            desc = (
                                f"batches {group[0].index}..{group[-1].index} "
                                f"({sum(b.shots for b in group)} shots)"
                            )
                        raise BatchExecutionError(
                            f"job {index} {desc} failed on backend "
                            f"{state.choice.name!r}: {exc}",
                            job_index=index,
                            batch_index=group[0].index,
                        ) from exc
                    batch_stats = future.result()
                    if ctx is not None:
                        self._record_batch(
                            state, group, batch_stats, ctx, time.perf_counter() - submitted
                        )
                    self.scheduler.note_group(batch_stats)
                    state.stats.append(batch_stats)
                    if len(state.stats) == state.expected:
                        result = self._finish(
                            state.job,
                            state.key,
                            state.choice,
                            state.stats,
                            time.perf_counter() - state.started,
                            parent_id=state.span.span_id,
                        )
                        tracer.end(state.span)
                        state.span = None
                        self._release(state.key)
                        claimed.discard(state.key)
                        yield index, result
                        yield from self._serve_duplicates(duplicates, state.key, parent_id)

            # Our own work is done (and its claims released), so waiting
            # on other threads' flights cannot deadlock.
            for (index, job, key), event in joined:
                if cancel is not None:
                    cancel.raise_if_cancelled()
                self._join(event, cancel)
                hit = self._cache_hit(key, parent_id=parent_id)
                if hit is None:
                    # The owner aborted without storing (failure or
                    # cancellation): compute it here after all.
                    hit = self._compute_singleflight(job, key, parent_id, cancel)
                elif tracer.enabled:
                    tracer.event(
                        "engine.singleflight_join",
                        parent_id=parent_id,
                        job_hash=key[:16],
                    )
                yield index, hit
                yield from self._serve_duplicates(duplicates, key, parent_id)
        except GeneratorExit:
            # An abandoned generator must not leave batches queued — but
            # close() must not block on running ones either.
            for future in future_map:
                future.cancel()
            raise
        except BaseException as exc:
            # Any failure (a dead batch, an inline density job, a cache
            # write) quiets the pool before it propagates.
            if tracer.enabled:
                tracer.event(
                    "engine.cancel_and_drain",
                    parent_id=parent_id,
                    futures=len(future_map),
                )
                for state in states.values():
                    if state.span is not None:
                        tracer.end(state.span, error=exc)
                        state.span = None
            self.scheduler.cancel_and_drain(future_map)
            raise
        finally:
            # Abandoned claims (failure, cancellation, a closed stream)
            # must wake their joiners so one of them can take over.
            for key in claimed:
                self._release(key)

    def _record_batch(self, state, group, stats, ctx, latency: float) -> None:
        """Stitch one pooled dispatch into the trace, parent-side view first.

        ``group`` is the tuple of batches behind one future — a single
        batch on thread pools, a whole batch group on process pools.  The
        parent-observed latency (submit → future resolved) decomposes
        into queue wait (submit → worker start, from the shipped context)
        plus worker-side time plus the serialization/IPC remainder — the
        number the run report's ``ipc_share`` is built from.
        """
        records = stats.spans or ()
        worker = next((r for r in records if r["name"] == "worker.batch"), None)
        queue_wait = worker["attrs"].get("queue_wait", 0.0) if worker else 0.0
        worker_time = worker["duration"] if worker else 0.0
        ipc_gap = max(latency - queue_wait - worker_time, 0.0)
        span = self.obs.tracer.record(
            "engine.batch",
            start_unix=ctx["submit_unix"],
            duration=latency,
            parent_id=state.span.span_id if state.span is not None else None,
            batch_index=group[0].index,
            shots=sum(b.shots for b in group),
            batches=len(group),
            queue_wait=queue_wait,
            ipc_gap=ipc_gap,
        )
        self.obs.tracer.adopt(records, parent_id=span.span_id)
        metrics = self.obs.metrics
        metrics.histogram("engine.batch_latency").observe(latency)
        metrics.histogram("engine.queue_wait").observe(queue_wait)
        metrics.histogram("engine.ipc_gap").observe(ipc_gap)

    def _serve_duplicates(
        self, duplicates, key, parent_id: str | None = None
    ) -> Iterator[tuple[int, JobResult]]:
        for dup_index in duplicates.pop(key, ()):
            hit = self._cache_hit(key, parent_id=parent_id)
            yield dup_index, hit

    # ------------------------------------------------------------------
    # Shared per-job bookkeeping
    # ------------------------------------------------------------------
    def _cache_hit(self, key: str, parent_id: str | None = None) -> JobResult | None:
        if self.cache is None:
            return None
        hit = self.cache.get(key, trace_parent=parent_id)
        if hit is None:
            return None
        with self._stats_lock:
            self.stats.jobs += 1
            self.stats.cached_jobs += 1
        return hit

    def _run_uncached(
        self,
        job: Job,
        key: str,
        parent_id: str | None = None,
        cancel: CancelToken | None = None,
    ) -> JobResult:
        tracer = self.obs.tracer
        choice = self.router.select(job)
        span = tracer.begin(
            "engine.job",
            parent_id=parent_id,
            job_hash=key[:16],
            backend=choice.name,
            shots=job.shots,
        )
        start = time.perf_counter()
        error = None
        try:
            batch_stats = self.scheduler.execute(
                job, choice.name, trace_parent=span.span_id, cancel=cancel
            )
            return self._finish(
                job,
                key,
                choice,
                batch_stats,
                time.perf_counter() - start,
                parent_id=span.span_id,
            )
        except BaseException as exc:
            error = exc
            raise
        finally:
            tracer.end(span, error=error)

    def _finish(
        self,
        job: Job,
        key: str,
        choice: BackendChoice,
        batch_stats: Sequence[BatchStats],
        elapsed: float,
        parent_id: str | None = None,
    ) -> JobResult:
        tracer = self.obs.tracer
        span = tracer.begin("engine.reduce", parent_id=parent_id, batches=len(batch_stats))
        result = _combine(job, key, choice, batch_stats, elapsed)
        if self.cache is not None:
            self.cache.put(key, result)
        tracer.end(span)
        self.obs.metrics.histogram("engine.job_latency").observe(elapsed)
        with self._stats_lock:
            self.stats.jobs += 1
            self.stats.shots += job.shots
            self.stats.wall_time += elapsed
            self.stats.compile_time += result.compile_time
            self.stats.execute_time += result.execute_time
            self.stats.backends[choice.name] += 1
        return result

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats_dict(self) -> dict:
        """Engine statistics plus cache counters, JSON-safe."""
        payload = self.stats.to_dict()
        payload["cache"] = self.cache.stats.to_dict() if self.cache is not None else None
        return payload

    def close(self) -> None:
        """Release the worker pool."""
        self.scheduler.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _combine(
    job: Job,
    key: str,
    choice: BackendChoice,
    batch_stats: Sequence[BatchStats],
    elapsed: float,
) -> JobResult:
    """Reduce batch (or worker-reduced group) aggregates in index order.

    Group stats arrive pre-folded (see
    :class:`~repro.engine.runners.GroupStats`); their contribution to the
    Counter/parity sums is identical to their member batches', so this
    reduction is bit-identical across dispatch shapes.
    """
    ordered = sorted(batch_stats, key=lambda s: s.index)
    counts: Counter = Counter()
    compile_time = 0.0
    execute_time = 0.0
    for stats in ordered:
        counts.update(stats.counts)
        compile_time += stats.compile_time
        execute_time += stats.execute_time
    parity_mean = parity_stderr = None
    probabilities = None
    if job.mode == "exact":
        probabilities = ordered[0].probabilities
        if job.readout:
            parity_mean = ordered[0].parity_total
            parity_stderr = 0.0
    elif job.readout:
        total = 0.0
        total_sq = 0.0
        for stats in ordered:
            total += stats.parity_total
            total_sq += stats.parity_total_sq
        parity_mean = total / job.shots
        variance = max(total_sq / job.shots - parity_mean * parity_mean, 0.0)
        parity_stderr = math.sqrt(variance / job.shots)
    return JobResult(
        job_hash=key,
        backend=choice.name,
        shots=job.shots,
        num_batches=sum(getattr(stats, "num_batches", 1) for stats in ordered),
        counts=dict(counts) if counts else None,
        probabilities=probabilities,
        parity_mean=parity_mean,
        parity_stderr=parity_stderr,
        elapsed=elapsed,
        compile_time=compile_time,
        execute_time=execute_time,
    )
