"""Render a collected trace into a run report and a text timeline.

:func:`build_run_report` reduces a window of span records (plus the
metrics registry) into one JSON-safe dict: per-span-name totals, the
pipeline *breakdown* — queue wait, worker-side compile, worker-side
execute, parent-side reduce, and the serialization/IPC gap (parent-
observed batch latency minus queue wait minus worker-side time, the
direct measurement of what pickling jobs in and shipping results out
costs) — worker utilization, and cache hit rates by tier.

:func:`render_timeline` draws the span tree as an indented text timeline
with proportional duration bars — a terminal-friendly flame view.

Both operate on plain span dicts (:meth:`repro.obs.trace.Tracer.span_dicts`),
so a report can be rebuilt offline from an exported JSONL trace.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["build_run_report", "render_timeline", "run_report"]

REPORT_VERSION = 1

#: Span names whose durations/attrs feed the pipeline breakdown.
_QUEUE_ATTR = "queue_wait"
_IPC_ATTR = "ipc_gap"


def _window(source, since: int = 0) -> list[dict]:
    """Normalise a tracer/Observability/span-list into span dicts."""
    if isinstance(source, (list, tuple)):
        return list(source[since:]) if since else list(source)
    tracer = getattr(source, "tracer", source)
    return tracer.span_dicts(since=since)


def _by_name(spans) -> dict:
    totals: dict[str, dict] = {}
    for span in spans:
        entry = totals.setdefault(
            span["name"], {"count": 0, "total": 0.0, "max": 0.0, "errors": 0}
        )
        entry["count"] += 1
        entry["total"] += span["duration"]
        entry["max"] = max(entry["max"], span["duration"])
        if span.get("status") == "error":
            entry["errors"] += 1
    for entry in totals.values():
        entry["mean"] = entry["total"] / entry["count"]
    return totals


def _roots(spans) -> list[dict]:
    ids = {span["span_id"] for span in spans}
    return [span for span in spans if span.get("parent_id") not in ids]


def _first_attr(spans, key):
    for span in spans:
        value = span.get("attrs", {}).get(key)
        if value is not None:
            return value
    return None


def build_run_report(source, *, since: int = 0, extra: dict | None = None) -> dict:
    """Reduce a span window (+ metrics, when available) into one report dict.

    ``source`` may be an :class:`~repro.obs.runtime.Observability`, a
    :class:`~repro.obs.trace.Tracer`, or a plain list of span dicts (e.g.
    re-read from an exported JSONL trace).  ``since`` windows the trace
    (pair with :meth:`~repro.obs.trace.Tracer.mark`).
    """
    spans = _window(source, since)
    metrics = getattr(source, "metrics", None)
    roots = _roots(spans)
    wall = sum(span["duration"] for span in roots)

    queue_wait = 0.0
    ipc = 0.0
    worker_compile = 0.0
    worker_execute = 0.0
    reduce_time = 0.0
    worker_busy = 0.0
    batches = 0
    for span in spans:
        name = span["name"]
        attrs = span.get("attrs", {})
        if name == "worker.batch":
            queue_wait += attrs.get(_QUEUE_ATTR, 0.0) or 0.0
            worker_busy += span["duration"]
            batches += 1
        elif name == "worker.compile":
            worker_compile += span["duration"]
        elif name == "worker.execute":
            worker_execute += span["duration"]
        elif name == "engine.batch":
            ipc += attrs.get(_IPC_ATTR, 0.0) or 0.0
        elif name == "engine.reduce":
            reduce_time += span["duration"]

    breakdown = {
        "queue_wait": queue_wait,
        "worker_compile": worker_compile,
        "worker_execute": worker_execute,
        "ipc": ipc,
        "reduce": reduce_time,
    }
    attributed = sum(breakdown.values())
    shares = {
        key: (value / attributed if attributed > 0 else 0.0)
        for key, value in breakdown.items()
    }

    workers = _first_attr(spans, "workers")
    utilization = None
    if workers and wall > 0:
        utilization = worker_busy / (wall * workers)

    report = {
        "version": REPORT_VERSION,
        "trace_id": spans[0]["trace_id"] if spans else None,
        "num_spans": len(spans),
        "wall_time": wall,
        "workers": workers,
        "executor": _first_attr(spans, "executor"),
        "batches": batches,
        "worker_busy": worker_busy,
        "worker_utilization": utilization,
        "breakdown": breakdown,
        "breakdown_shares": shares,
        "ipc_share": shares["ipc"],
        "by_name": _by_name(spans),
        "errors": sum(1 for span in spans if span.get("status") == "error"),
    }
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    if extra:
        report.update(extra)
    return report


# ----------------------------------------------------------------------
# Text timeline
# ----------------------------------------------------------------------
def render_timeline(source, *, since: int = 0, width: int = 100, max_lines: int = 60) -> str:
    """The span tree as an indented text timeline with duration bars.

    Bars are positioned proportionally between the earliest start and the
    latest end of the window, so queue wait shows up as horizontal offset
    between a parent batch span and its worker child.  Output is capped at
    ``max_lines`` spans (the deepest/latest are elided with a summary
    line), keeping reports terminal- and envelope-sized.
    """
    spans = _window(source, since)
    if not spans:
        return "(no spans recorded)"
    t0 = min(span["start_unix"] for span in spans)
    t1 = max(span["start_unix"] + span["duration"] for span in spans)
    total = max(t1 - t0, 1e-9)

    children: dict[str | None, list[dict]] = defaultdict(list)
    ids = {span["span_id"] for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        children[parent if parent in ids else None].append(span)
    for group in children.values():
        group.sort(key=lambda s: s["start_unix"])

    name_width = 36
    bar_width = max(20, width - name_width - 14)
    lines = [
        f"trace {spans[0].get('trace_id') or '?'} — {len(spans)} spans, "
        f"{total * 1e3:.1f} ms window"
    ]
    emitted = 0
    elided = 0

    def emit(span: dict, depth: int) -> None:
        nonlocal emitted, elided
        if emitted >= max_lines:
            elided += 1
        else:
            label = ("  " * depth + span["name"])[:name_width]
            offset = int((span["start_unix"] - t0) / total * bar_width)
            length = max(1, int(span["duration"] / total * bar_width))
            bar = " " * min(offset, bar_width - 1) + "█" * min(length, bar_width - offset)
            marker = " !" if span.get("status") == "error" else ""
            lines.append(
                f"{label:<{name_width}} {span['duration'] * 1e3:9.2f}ms |{bar:<{bar_width}}|{marker}"
            )
            emitted += 1
        for child in children.get(span["span_id"], ()):
            emit(child, depth + 1)

    for root in children[None]:
        emit(root, 0)
    if elided:
        lines.append(f"... (+{elided} more spans)")
    return "\n".join(lines)


def run_report(source, *, since: int = 0, extra: dict | None = None) -> dict:
    """The envelope-ready observability block: report + text timeline."""
    spans = _window(source, since)
    report = build_run_report(spans, extra=extra)
    metrics = getattr(source, "metrics", None)
    if metrics is not None:
        report["metrics"] = metrics.to_dict()
    return {"report": report, "timeline": render_timeline(spans)}
