"""Small statistics helpers: linear fits and binomial confidence intervals.

Used by the Figure 9 analyses (the paper overlays linear fits on the GHZ and
CSWAP fidelity data) and by the shot-based estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = ["LinearFit", "linear_fit", "binomial_stderr", "wilson_interval"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the fitted line."""
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares fit of a line through the points."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ValueError("linear_fit needs at least two matching points")
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    residual = np.sum((ys - predicted) ** 2)
    total = np.sum((ys - ys.mean()) ** 2)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=float(r_squared))


def binomial_stderr(successes: int, trials: int) -> float:
    """Standard error of a binomial proportion estimate."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    p = successes / trials
    return math.sqrt(max(p * (1.0 - p), 0.0) / trials)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    p = successes / trials
    denom = 1.0 + z**2 / trials
    center = (p + z**2 / (2 * trials)) / denom
    half = z * math.sqrt(p * (1.0 - p) / trials + z**2 / (4 * trials**2)) / denom
    return max(0.0, center - half), min(1.0, center + half)
