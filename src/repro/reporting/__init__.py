"""Reporting containers for tables and figures."""

from .tables import Figure, Series, Table

__all__ = ["Figure", "Series", "Table"]
