"""Parallel quantum signal processing via polynomial factorisation (Sec 6.4).

Parallel QSP [42] estimates tr(P(rho)) for a degree-d polynomial P by
factoring P into k real-coefficient factors of degree ~d/k, realising each
factor on its own system, and assembling the product trace with the
multi-party SWAP test — reducing circuit depth from O(d) to O(d/k).

This module implements the algorithm-level pipeline:

* :func:`factor_polynomial` splits P into k conjugate-closed factor
  polynomials (depth = max factor degree, reported);
* :func:`parallel_qsp_trace_exact` evaluates tr(prod_j P_j(rho)) through the
  cyclic-shift identity (valid for arbitrary Hermitian factors);
* :func:`parallel_qsp_trace_sampled` additionally runs the *actual*
  multi-party SWAP test when every factor matrix is PSD, normalising each
  P_j(rho) to a state and rescaling — exercising the same protocol the
  paper's distributed QSP would run.

Substitution note: the paper realises each factor with a QSP circuit
(block-encodings + phase factors); we realise factors by direct matrix
application, which preserves the assembly step COMPAS contributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cyclic_shift import multivariate_trace
from ..engine import Engine

__all__ = [
    "FactoredPolynomial",
    "factor_polynomial",
    "apply_polynomial",
    "parallel_qsp_trace_exact",
    "parallel_qsp_trace_sampled",
]


@dataclass
class FactoredPolynomial:
    """P(x) = scale * prod_j P_j(x), each P_j with real coefficients."""

    scale: float
    factors: list[np.ndarray]
    """Each entry: coefficient array, highest degree first (np.roots style)."""

    @property
    def num_factors(self) -> int:
        """k — the parallelism degree."""
        return len(self.factors)

    @property
    def max_factor_degree(self) -> int:
        """The sequential depth proxy: parallel QSP runs at O(d/k)."""
        return max(len(f) - 1 for f in self.factors)

    def evaluate(self, x: float) -> float:
        """Evaluate P at a scalar."""
        out = self.scale
        for f in self.factors:
            out *= float(np.polyval(f, x))
        return out


def factor_polynomial(coefficients: np.ndarray, k: int) -> FactoredPolynomial:
    """Split a real polynomial into k real-coefficient factors.

    Roots are grouped with conjugate pairs kept together (so every factor is
    real) and spread round-robin to balance degrees — the paper's degree
    O(d/k) requirement.  The leading coefficient is absorbed into ``scale``.
    """
    coefficients = np.asarray(coefficients, dtype=float)
    if coefficients.ndim != 1 or len(coefficients) < 2:
        raise ValueError("need a polynomial of degree >= 1")
    if k < 1:
        raise ValueError("k must be positive")
    degree = len(coefficients) - 1
    if k > degree:
        raise ValueError("cannot split into more factors than the degree")
    roots = np.roots(coefficients)
    # Group roots into conjugate-closed units.
    units: list[list[complex]] = []
    used = np.zeros(len(roots), dtype=bool)
    for i, root in enumerate(roots):
        if used[i]:
            continue
        used[i] = True
        if abs(root.imag) < 1e-10:
            units.append([complex(root.real, 0.0)])
            continue
        # Find its conjugate partner.
        partner = None
        for j in range(i + 1, len(roots)):
            if not used[j] and abs(roots[j] - root.conjugate()) < 1e-8:
                partner = j
                break
        if partner is None:
            raise ValueError("complex roots of a real polynomial must pair up")
        used[partner] = True
        units.append([root, roots[partner]])
    # Round-robin units into k buckets, largest first, to balance degrees.
    units.sort(key=len, reverse=True)
    buckets: list[list[complex]] = [[] for _ in range(k)]
    for index, unit in enumerate(units):
        target = min(range(k), key=lambda b: len(buckets[b]))
        buckets[target].extend(unit)
    factors = []
    for bucket in buckets:
        if not bucket:
            factors.append(np.array([1.0]))
            continue
        poly = np.real(np.poly(np.array(bucket)))
        factors.append(poly)
    return FactoredPolynomial(scale=float(coefficients[0]), factors=factors)


def apply_polynomial(rho: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Matrix polynomial P_j(rho) (coefficients highest-degree first)."""
    rho = np.asarray(rho, dtype=complex)
    out = np.zeros_like(rho)
    for c in coefficients:
        out = out @ rho + c * np.eye(rho.shape[0])
    return out


def parallel_qsp_trace_exact(rho: np.ndarray, factored: FactoredPolynomial) -> float:
    """Exact tr(P(rho)) via the factor-product identity (Eq. in Sec 6.4)."""
    matrices = [apply_polynomial(rho, f) for f in factored.factors]
    return float(np.real(factored.scale * multivariate_trace(matrices)))


def parallel_qsp_trace_sampled(
    rho: np.ndarray,
    factored: FactoredPolynomial,
    *,
    shots: int = 30000,
    seed: int | None = None,
    variant: str = "d",
    engine: Engine | None = None,
) -> tuple[float, float]:
    """tr(P(rho)) through the real multi-party SWAP test.

    .. deprecated:: 1.1
        Thin wrapper over ``Experiment.qsp(...).run(engine)``; use
        :class:`repro.api.Experiment` directly (its envelope also records
        the seed, which this tuple cannot).  Returns ``(estimate, exact)``
        bit-identically to the pre-API implementation at the same integer
        seed.
    """
    from ..api import Experiment
    from ..api.deprecation import warn_legacy

    warn_legacy("parallel_qsp_trace_sampled()", "Experiment.qsp(...).run()")
    return (
        Experiment.qsp(rho, factored, shots=shots, seed=seed, variant=variant)
        .run(engine=engine)
        .raw
    )
