"""Engine scaling: worker fan-out and result-cache behaviour.

Demonstrates the two headline properties of the execution engine on a
multi-shot SWAP-test job:

* **scaling** — the same job partitioned into batches runs on 1 worker and
  on a multi-worker process pool, producing *bit-identical* estimates; with
  more than one CPU available the pool reduces wall time.
* **caching** — re-running an identical job is served from the result cache
  (hit counter increments, no new shots are executed) and is orders of
  magnitude faster than recomputation.
"""

import numpy as np
from conftest import FULL_SCALE, cpu_count, emit, stopwatch

from repro.core import build_monolithic_swap_test, swap_test_job
from repro.engine import Engine
from repro.reporting import Table
from repro.utils import random_density_matrix

SHOTS = 20_000 if FULL_SCALE else 6_000
CPUS = cpu_count()
POOL_WORKERS = max(2, min(4, CPUS))


def make_job(seed: int = 404):
    rng = np.random.default_rng(77)
    build = build_monolithic_swap_test(3, 1, variant="b", basis="x")
    states = [random_density_matrix(1, rng=rng) for _ in range(3)]
    return swap_test_job(build, states, SHOTS, seed, batch_size=250)


def test_engine_scaling(once):
    table = Table(
        f"Engine scaling — {SHOTS}-shot SWAP-test job ({CPUS} CPU(s) visible)",
        ["configuration", "wall_time_s", "estimate", "note"],
    )
    cached_engine = Engine(workers=1, cache=True)

    def run():
        rows = {}
        with Engine(workers=1) as serial, stopwatch() as serial_time:
            rows["serial"] = serial.run(make_job())
        rows["serial_time"] = serial_time()
        with Engine(workers=POOL_WORKERS, executor="process") as pool, \
                stopwatch() as pool_time:
            rows["pool"] = pool.run(make_job())
        rows["pool_time"] = pool_time()
        with stopwatch() as cold_time:
            rows["cold"] = cached_engine.run(make_job())
        rows["cold_time"] = cold_time()
        with stopwatch() as warm_time:
            rows["warm"] = cached_engine.run(make_job())
        rows["warm_time"] = warm_time()
        return rows

    rows = once(run)
    speedup = rows["serial_time"] / max(rows["pool_time"], 1e-9)
    cache_speedup = rows["cold_time"] / max(rows["warm_time"], 1e-9)
    table.add_row(
        configuration="1 worker (serial)",
        wall_time_s=rows["serial_time"],
        estimate=f"{rows['serial'].parity_mean:.5f}",
        note="direct path",
    )
    table.add_row(
        configuration=f"{POOL_WORKERS} workers (process pool)",
        wall_time_s=rows["pool_time"],
        estimate=f"{rows['pool'].parity_mean:.5f}",
        note=f"speedup x{speedup:.2f}",
    )
    table.add_row(
        configuration="cache cold",
        wall_time_s=rows["cold_time"],
        estimate=f"{rows['cold'].parity_mean:.5f}",
        note="computed + stored",
    )
    table.add_row(
        configuration="cache warm",
        wall_time_s=rows["warm_time"],
        estimate=f"{rows['warm'].parity_mean:.5f}",
        note=f"served from cache, x{cache_speedup:.0f} faster",
    )
    emit(
        "engine_scaling",
        table,
        wall_time=sum(rows[k] for k in ("serial_time", "pool_time", "cold_time", "warm_time")),
        engine=cached_engine,
    )

    # Determinism: worker count never changes the bits.
    assert rows["pool"].parity_mean == rows["serial"].parity_mean
    assert rows["pool"].parity_stderr == rows["serial"].parity_stderr
    # Caching: the repeated job is a hit and skips recomputation.
    assert rows["warm"].from_cache and not rows["cold"].from_cache
    assert rows["warm"].parity_mean == rows["cold"].parity_mean
    assert cached_engine.cache.stats.hits == 1
    assert rows["warm_time"] < rows["cold_time"]
    # Scaling: with real parallel hardware, more workers reduce wall time.
    # A small tolerance absorbs pool-startup jitter on loaded 2-vCPU hosts;
    # any genuine 2x+ speedup clears it easily.
    if CPUS > 1:
        assert rows["pool_time"] < rows["serial_time"] * 0.95
    cached_engine.close()
