"""Batched shot scheduling over a worker pool.

The scheduler splits a job's shot budget into fixed-size batches (the size
comes from the job spec, not the pool) and fans them across a
``concurrent.futures`` pool.  Each batch derives its RNG substream from
``(job.seed, batch.index)`` alone, and results are reduced in batch-index
order, so the outcome is bit-identical whether the batches run serially, on
4 threads, or on 16 processes.

``executor`` picks the pool flavour:

* ``"serial"``  — run batches inline (no pool, the legacy direct path);
* ``"thread"``  — :class:`~concurrent.futures.ThreadPoolExecutor` (default;
  cheap to spin up, shares the circuit objects);
* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor` (true
  CPU parallelism; jobs and batches are picklable by construction).
"""

from __future__ import annotations

import math
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from .job import Job
from .runners import Batch, BatchStats, execute_batch

__all__ = ["Scheduler"]

_EXECUTORS = ("serial", "thread", "process")


class Scheduler:
    """Plans a job into batches and executes them on a worker pool."""

    def __init__(self, workers: int = 1, executor: str = "thread"):
        if workers < 1:
            raise ValueError("need at least one worker")
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}")
        self.workers = workers
        self.executor_kind = executor
        self._pool: Executor | None = None

    # ------------------------------------------------------------------
    def plan(self, job: Job) -> list[Batch]:
        """Deterministic batch partition of the job's shot budget."""
        if job.mode == "exact":
            return [Batch(index=0, shots=job.shots)]
        size = job.resolved_batch_size()
        num_batches = max(1, math.ceil(job.shots / size))
        batches = []
        remaining = job.shots
        for index in range(num_batches):
            take = min(size, remaining)
            batches.append(Batch(index=index, shots=take))
            remaining -= take
        return batches

    def execute(self, job: Job, backend: str) -> list[BatchStats]:
        """Run every batch of ``job`` on ``backend``; stats in index order."""
        batches = self.plan(job)
        if (
            self.workers <= 1
            or self.executor_kind == "serial"
            or len(batches) <= 1
            or backend == "density"
        ):
            return [execute_batch(job, batch, backend) for batch in batches]
        pool = self._ensure_pool()
        futures = [pool.submit(execute_batch, job, batch, backend) for batch in batches]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor_kind == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
