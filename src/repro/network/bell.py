"""Bell-pair resources: allocation, generation, and consumption accounting.

Bell pairs are the currency of distributed quantum computing (Sec 2.2).  The
ledger tracks both *logical* pairs (one per teleoperation, regardless of
distance) and *physical* pairs (hop-weighted: entanglement swapping on a line
consumes one nearest-neighbour pair per hop, Sec 2.5).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .topology import Topology

__all__ = ["BellEvent", "BellLedger", "BellPair"]


@dataclass(frozen=True)
class BellPair:
    """A pre-shared pair: global qubit indices and owning QPUs."""

    qubit_a: int
    qubit_b: int
    qpu_a: str
    qpu_b: str


@dataclass(frozen=True)
class BellEvent:
    """One recorded pair consumption: endpoints, hop distance, and purpose."""

    qpu_a: str
    qpu_b: str
    hops: int
    purpose: str = ""


class BellLedger:
    """Accounting of Bell pairs consumed, per QPU pair and per QPU.

    Two granularities are tracked:

    * **logical** — one entry per teleoperation endpoint pair (``by_link``,
      ``by_qpu``), independent of distance;
    * **physical** — hop-weighted nearest-neighbour pairs: a logical pair
      between QPUs ``h`` hops apart is stitched from ``h`` physical pairs,
      one per link segment of a shortest path (``physical_by_link``,
      ``physical_by_qpu`` — every QPU on the path touches the swap chain).
    """

    def __init__(self, topology: Topology | None = None):
        self.topology = topology
        self.logical = 0
        self.physical = 0
        self.by_link: Counter = Counter()
        self.by_qpu: Counter = Counter()
        self.physical_by_link: Counter = Counter()
        self.physical_by_qpu: Counter = Counter()
        self.events: list[BellEvent] = []

    def record(self, qpu_a: str, qpu_b: str, purpose: str = "") -> int:
        """Record consumption of one logical pair between two QPUs.

        Returns the hop count (= physical pairs consumed) of this event.
        """
        if qpu_a == qpu_b:
            raise ValueError("Bell pair endpoints must be distinct QPUs")
        self.logical += 1
        hops = 1
        segments = [(qpu_a, qpu_b)]
        if self.topology is not None:
            hops = self.topology.swapping_cost(qpu_a, qpu_b)
            path = self.topology.path(qpu_a, qpu_b)
            segments = list(zip(path, path[1:]))
        self.physical += hops
        key = tuple(sorted((qpu_a, qpu_b)))
        self.by_link[key] += 1
        # Each endpoint QPU stores one half of the pair.
        self.by_qpu[qpu_a] += 1
        self.by_qpu[qpu_b] += 1
        for seg_a, seg_b in segments:
            self.physical_by_link[tuple(sorted((seg_a, seg_b)))] += 1
            self.physical_by_qpu[seg_a] += 1
            self.physical_by_qpu[seg_b] += 1
        self.events.append(BellEvent(qpu_a, qpu_b, hops, purpose))
        return hops

    def max_per_qpu(self) -> int:
        """Largest number of pair-halves any single QPU holds."""
        return max(self.by_qpu.values(), default=0)

    def summary(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "logical_pairs": self.logical,
            "physical_pairs": self.physical,
            "max_halves_per_qpu": self.max_per_qpu(),
            "links": {f"{a}--{b}": c for (a, b), c in sorted(self.by_link.items())},
            "physical_links": {
                f"{a}--{b}": c for (a, b), c in sorted(self.physical_by_link.items())
            },
        }

    def __repr__(self) -> str:
        return f"BellLedger(logical={self.logical}, physical={self.physical})"
