"""Dense linear-algebra helpers for states and operators.

These are the numerical workhorses behind the exact (reference) computations
that every circuit construction in the repository is validated against.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import reduce

import numpy as np

__all__ = [
    "kron_all",
    "is_unitary",
    "is_hermitian",
    "is_density_matrix",
    "dagger",
    "partial_trace",
    "state_fidelity",
    "purity",
    "operator_distance",
    "global_phase_aligned",
    "allclose_up_to_global_phase",
    "embed_operator",
]

_ATOL = 1e-9


def kron_all(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    if not matrices:
        raise ValueError("kron_all requires at least one matrix")
    return reduce(np.kron, matrices)


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Conjugate transpose."""
    return matrix.conj().T


def is_unitary(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Whether ``matrix`` is unitary within tolerance."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ dagger(matrix), identity, atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = _ATOL) -> bool:
    """Whether ``matrix`` equals its conjugate transpose within tolerance."""
    matrix = np.asarray(matrix)
    return bool(np.allclose(matrix, dagger(matrix), atol=atol))


def is_density_matrix(matrix: np.ndarray, atol: float = 1e-7) -> bool:
    """Whether ``matrix`` is Hermitian, PSD, and unit trace."""
    matrix = np.asarray(matrix)
    if not is_hermitian(matrix, atol=atol):
        return False
    if abs(np.trace(matrix) - 1.0) > atol:
        return False
    eigenvalues = np.linalg.eigvalsh(matrix)
    return bool(eigenvalues.min() > -atol)


def partial_trace(rho: np.ndarray, keep: Sequence[int], num_qubits: int) -> np.ndarray:
    """Trace out all qubits not in ``keep`` from an ``num_qubits``-qubit state.

    ``rho`` may be a density matrix (2^n x 2^n) or a statevector (2^n,); a
    statevector is promoted to its projector first.  Qubit 0 is the leftmost
    tensor factor.  The surviving qubits keep their relative order.
    """
    rho = np.asarray(rho)
    dim = 2**num_qubits
    keep = list(keep)
    if sorted(set(keep)) != sorted(keep):
        raise ValueError("duplicate qubits in keep")
    if rho.ndim == 1:
        # Statevector fast path: never materialise the full projector.
        if rho.shape[0] != dim:
            raise ValueError("statevector size does not match num_qubits")
        tensor = rho.reshape([2] * num_qubits)
        tensor = np.moveaxis(tensor, keep, range(len(keep)))
        block = tensor.reshape(2 ** len(keep), -1)
        return block @ block.conj().T
    if rho.shape != (dim, dim):
        raise ValueError("density matrix size does not match num_qubits")
    trace_out = [q for q in range(num_qubits) if q not in keep]
    tensor = rho.reshape([2] * (2 * num_qubits))
    # Row indices are axes 0..n-1, column indices are axes n..2n-1.
    for offset, qubit in enumerate(sorted(trace_out)):
        axis = qubit - offset
        row_axes = tensor.ndim // 2
        tensor = np.trace(tensor, axis1=axis, axis2=axis + row_axes)
    kept = len(keep)
    # The surviving axes are ordered by original qubit index; permute so the
    # order follows `keep` as given.
    order = np.argsort(np.argsort(keep))
    perm = list(order) + [kept + i for i in order]
    tensor = tensor.transpose(perm)
    return tensor.reshape(2**kept, 2**kept)


def state_fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """Uhlmann fidelity F(a, b) between states.

    Accepts statevectors and/or density matrices in either argument and uses
    the cheapest applicable formula.  Returns a value in [0, 1].
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim == 1 and b.ndim == 1:
        return float(abs(np.vdot(a, b)) ** 2)
    if a.ndim == 1:
        return float(np.real(np.vdot(a, b @ a)))
    if b.ndim == 1:
        return float(np.real(np.vdot(b, a @ b)))
    # General mixed-mixed case: F = (tr sqrt(sqrt(a) b sqrt(a)))^2.
    eigenvalues, vectors = np.linalg.eigh(a)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    sqrt_a = (vectors * np.sqrt(eigenvalues)) @ vectors.conj().T
    inner = sqrt_a @ b @ sqrt_a
    inner_eigenvalues = np.linalg.eigvalsh(inner)
    inner_eigenvalues = np.clip(inner_eigenvalues, 0.0, None)
    return float(np.sum(np.sqrt(inner_eigenvalues)) ** 2)


def purity(rho: np.ndarray) -> float:
    """tr(rho^2)."""
    rho = np.asarray(rho)
    return float(np.real(np.trace(rho @ rho)))


def operator_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius distance between two operators."""
    return float(np.linalg.norm(np.asarray(a) - np.asarray(b)))


def global_phase_aligned(vector: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Return ``vector`` multiplied by the phase that best aligns it to ``reference``."""
    overlap = np.vdot(reference, vector)
    if abs(overlap) < 1e-12:
        return vector
    return vector * (overlap.conjugate() / abs(overlap))


def allclose_up_to_global_phase(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """Whether two statevectors agree up to a global phase."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.allclose(global_phase_aligned(a, b), b, atol=atol))


def embed_operator(op: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Embed an operator acting on ``qubits`` into the full Hilbert space.

    ``op`` acts on ``len(qubits)`` qubits in the order given; the result acts
    on ``num_qubits`` qubits with identity elsewhere.
    """
    qubits = list(qubits)
    arity = len(qubits)
    if op.shape != (2**arity, 2**arity):
        raise ValueError("operator size does not match qubit count")
    if len(set(qubits)) != arity:
        raise ValueError("duplicate qubits")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise ValueError("qubit index out of range")
    tensor = op.reshape([2] * (2 * arity))
    full = np.eye(2**num_qubits, dtype=complex).reshape([2] * (2 * num_qubits))
    # Build via einsum-free approach: apply op to identity as a superoperator
    # would be awkward; instead permute the dense matrix directly.
    # Order the full space as [targets..., rest...] then kron and permute back.
    rest = [q for q in range(num_qubits) if q not in qubits]
    ordered = qubits + rest
    big = np.kron(op, np.eye(2 ** len(rest), dtype=complex))
    big = big.reshape([2] * (2 * num_qubits))
    inverse = np.argsort(ordered)
    perm = list(inverse) + [num_qubits + i for i in inverse]
    big = big.transpose(perm)
    del tensor, full
    return big.reshape(2**num_qubits, 2**num_qubits)
