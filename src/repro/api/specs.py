"""Typed, frozen experiment specifications with stable content hashes.

The declarative API describes *what* to run with four immutable spec
dataclasses:

* :class:`ProtocolSpec` — which SWAP-test circuit family (variant, GHZ
  preparation mode, monolithic vs distributed backend, CSWAP design,
  optional GHZ-controlled observable insertion);
* :class:`NoiseSpec` — the paper's circuit-level noise model, decoupled
  from the simulator-facing :class:`~repro.sim.noisemodel.NoiseModel`;
* :class:`NetworkSpec` — the QPU interconnect topology for distributed
  backends;
* :class:`RunOptions` — *how* to run it (shots, seed, worker pool, cache).

Each spec has a ``validate()`` raising :class:`ValueError` on bad fields and
a ``content_hash()`` — a SHA-256 hex digest over a canonical, type-tagged
field encoding.  The digests are stable across processes and compose with
:meth:`repro.engine.Job.content_hash`: an :class:`~repro.api.Experiment`
hash is a digest over its spec digests plus its payload, so any spec
mutation changes the experiment hash exactly as any job mutation changes
the job hash.

Seeds: ``RunOptions.seed=None`` means "draw one fresh seed from the OS
entropy pool at run time and record it" (see :func:`fresh_seed`), so every
run is reproducible after the fact from its recorded result.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..core.cswap import DESIGNS
from ..core.swap_test import VARIANTS
from ..engine import Engine
from ..network.topology import (
    complete_topology,
    line_topology,
    ring_topology,
    star_topology,
)
from ..sim.noisemodel import NoiseModel

__all__ = [
    "BACKENDS",
    "EXECUTORS",
    "GHZ_MODES",
    "TOPOLOGIES",
    "NetworkSpec",
    "NoiseSpec",
    "ProtocolSpec",
    "RunOptions",
    "fresh_seed",
    "stable_hash",
]

BACKENDS = ("monolithic", "compas")
GHZ_MODES = ("linear", "fused")
EXECUTORS = ("auto", "serial", "thread", "process")
TOPOLOGIES = {
    "line": line_topology,
    "ring": ring_topology,
    "star": star_topology,
    "complete": complete_topology,
}

_PAULI_LETTERS = frozenset("IXYZ")


def fresh_seed() -> int:
    """One seed drawn from the OS entropy pool, small enough for any RNG."""
    return int(np.random.SeedSequence().entropy % (2**63))


# ----------------------------------------------------------------------
# Canonical hashing
# ----------------------------------------------------------------------
def _hash_value(h, value) -> None:
    """Feed ``value`` into ``h`` with an unambiguous type-tagged encoding."""
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B" + (b"1" if value else b"0"))
    elif isinstance(value, int):
        h.update(b"I" + str(value).encode())
    elif isinstance(value, float):
        h.update(b"F" + struct.pack(">d", value))
    elif isinstance(value, complex):
        h.update(b"C" + struct.pack(">dd", value.real, value.imag))
    elif isinstance(value, str):
        h.update(b"S" + str(len(value)).encode() + b":" + value.encode())
    elif isinstance(value, bytes):
        h.update(b"Y" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"A" + arr.dtype.str.encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"L" + str(len(value)).encode())
        for item in value:
            _hash_value(h, item)
    elif isinstance(value, dict):
        h.update(b"D" + str(len(value)).encode())
        for key in sorted(value):
            _hash_value(h, str(key))
            _hash_value(h, value[key])
    elif isinstance(value, (np.integer, np.floating, np.complexfloating)):
        _hash_value(h, value.item())
    else:
        raise TypeError(f"cannot hash value of type {type(value).__name__}")


def stable_hash(tag: str, value) -> str:
    """SHA-256 hex digest of ``value`` under the canonical encoding."""
    h = hashlib.sha256()
    h.update(tag.encode())
    _hash_value(h, value)
    return h.hexdigest()


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolSpec:
    """Which multi-party SWAP-test circuit family to run.

    ``k`` is the party count (``None`` means "inferred from the payload",
    e.g. the number of input states or the Rényi order).  ``observable``
    optionally names a Pauli string inserted under GHZ control (the
    Sec 6.3 numerator circuit).
    """

    k: int | None = None
    variant: str = "d"
    ghz_mode: str = "linear"
    backend: str = "monolithic"
    design: str = "teledata"
    observable: str | None = None

    def validate(self) -> None:
        """Raise :class:`ValueError` on any invalid field."""
        if self.k is not None and self.k < 2:
            raise ValueError("need at least two parties (k >= 2)")
        if self.variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}")
        if self.ghz_mode not in GHZ_MODES:
            raise ValueError(f"ghz_mode must be one of {GHZ_MODES}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if self.design not in DESIGNS:
            raise ValueError(f"design must be one of {DESIGNS}")
        if self.observable is not None and (
            not self.observable or set(self.observable) - _PAULI_LETTERS
        ):
            raise ValueError("observable must be a non-empty Pauli label (IXYZ)")

    def content_hash(self) -> str:
        """Stable digest of every field."""
        return stable_hash("repro-protocol-spec-v1", asdict(self))


@dataclass(frozen=True)
class NoiseSpec:
    """The paper's circuit-level noise rates (Sec 5.1), as a pure spec."""

    p1: float = 0.0
    p2: float = 0.0
    p_meas: float = 0.0

    @classmethod
    def from_base(cls, p: float) -> "NoiseSpec":
        """The paper's scaling: p/10 on 1q gates, p on 2q gates and readout."""
        return cls(p1=p / 10.0, p2=p, p_meas=p)

    @classmethod
    def noiseless(cls) -> "NoiseSpec":
        """All rates zero."""
        return cls()

    @classmethod
    def from_model(cls, model: NoiseModel | None) -> "NoiseSpec":
        """Lift a simulator-facing :class:`NoiseModel` into a spec."""
        if model is None:
            return cls()
        return cls(p1=model.p1, p2=model.p2, p_meas=model.p_meas)

    @property
    def is_noiseless(self) -> bool:
        """Whether every rate is exactly zero."""
        return self.p1 == 0.0 and self.p2 == 0.0 and self.p_meas == 0.0

    def to_model(self) -> NoiseModel | None:
        """The simulator-facing model; ``None`` when noiseless (fast path)."""
        if self.is_noiseless:
            return None
        return NoiseModel(p1=self.p1, p2=self.p2, p_meas=self.p_meas)

    def validate(self) -> None:
        """Raise :class:`ValueError` on any invalid field."""
        for name, rate in (("p1", self.p1), ("p2", self.p2), ("p_meas", self.p_meas)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"noise rate {name} must be in [0, 1]")

    def content_hash(self) -> str:
        """Stable digest of every field."""
        return stable_hash("repro-noise-spec-v1", asdict(self))


@dataclass(frozen=True)
class NetworkSpec:
    """QPU interconnect for distributed backends (``backend="compas"``)."""

    topology: str = "line"

    def validate(self) -> None:
        """Raise :class:`ValueError` on any invalid field."""
        if self.topology not in TOPOLOGIES:
            raise ValueError(f"topology must be one of {tuple(TOPOLOGIES)}")

    def build(self, names):
        """Instantiate the topology over the given QPU names."""
        return TOPOLOGIES[self.topology](names)

    def content_hash(self) -> str:
        """Stable digest of every field."""
        return stable_hash("repro-network-spec-v1", asdict(self))


@dataclass(frozen=True)
class RunOptions:
    """How to execute: shot budget, seed, worker pool, and result cache.

    ``seed=None`` draws one fresh entropy-pool seed at run time; the
    resolved value is recorded in the :class:`~repro.api.ExperimentResult`
    so the run stays reproducible.  ``executor="auto"`` picks ``serial``
    for one worker and ``thread`` otherwise.
    """

    shots: int = 20_000
    seed: int | None = None
    workers: int = 1
    executor: str = "auto"
    cache: bool | str = False
    batch_size: int | None = None

    def validate(self) -> None:
        """Raise :class:`ValueError` on any invalid field."""
        if self.shots < 1:
            raise ValueError("shots must be positive")
        if self.seed is not None and self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be positive")

    def resolved(self) -> "RunOptions":
        """These options with a concrete seed (drawn if ``seed`` is None)."""
        if self.seed is not None:
            return self
        return replace(self, seed=fresh_seed())

    def resolved_executor(self) -> str:
        """The executor the engine will actually use."""
        if self.executor != "auto":
            return self.executor
        return "serial" if self.workers == 1 else "thread"

    def make_engine(self) -> Engine:
        """A fresh :class:`~repro.engine.Engine` configured by these options."""
        return Engine(
            workers=self.workers,
            executor=self.resolved_executor(),
            cache=self.cache,
        )

    def content_hash(self) -> str:
        """Stable digest of every field."""
        return stable_hash("repro-run-options-v1", asdict(self))
