"""The paper's circuit-level noise model (Sec 5.1), extended network-aware.

For a base noise level ``p``:

* single-qubit gates suffer depolarizing noise of rate ``p / 10``,
* two-qubit gates suffer depolarizing noise of rate ``p``,
* measurements are flipped with probability ``p``.

The model is exposed in two interchangeable forms: Kraus channels for the
density-matrix simulator and stochastic Pauli fault sampling for the
statevector-trajectory and Pauli-frame simulators (depolarizing noise is a
Pauli mixture, so both forms describe the same channel).

**Network extension** (the Sec 7 architecture-side direction): the model
optionally carries

* ``p_link`` — two-qubit depolarizing applied to each freshly distributed
  Bell pair, once per nearest-neighbour link it crosses (Eq. 6's noisy-pair
  model, parameterised per hop);
* ``p_swap`` — an extra depolarizing penalty per entanglement-swapping
  station (``hops - 1`` swaps stitch an ``hops``-hop pair, Sec 2.5);
* ``qpu_overrides`` — per-QPU replacements of the homogeneous ``p1`` /
  ``p2`` / ``p_meas`` rates, modelling heterogeneous processors.

Link faults attach to instructions tagged as Bell-generation events
(:attr:`repro.circuits.circuit.Instruction.hops`); per-QPU overrides resolve
through the instruction's ``qpu`` site tag.  With all extension fields at
their defaults the model is bit-for-bit the paper's homogeneous one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..circuits.gates import I2, X, Y, Z

__all__ = ["NoiseModel", "QpuNoiseOverride", "depolarizing_kraus", "PAULI_MATRICES"]

PAULI_MATRICES = {"I": I2, "X": X, "Y": Y, "Z": Z}

_PAULI_NAMES = ("I", "X", "Y", "Z")


def depolarizing_kraus(probability: float, num_qubits: int) -> list[np.ndarray]:
    """Kraus operators of the ``num_qubits``-qubit depolarizing channel.

    With probability ``probability`` a uniformly random *non-identity* Pauli
    is applied.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    labels = ["".join(t) for t in itertools.product(_PAULI_NAMES, repeat=num_qubits)]
    non_identity = [lbl for lbl in labels if set(lbl) != {"I"}]
    kraus = []
    identity = np.eye(2**num_qubits, dtype=complex)
    kraus.append(np.sqrt(1.0 - probability) * identity)
    weight = probability / len(non_identity)
    for lbl in non_identity:
        op = np.array([[1.0]], dtype=complex)
        for ch in lbl:
            op = np.kron(op, PAULI_MATRICES[ch])
        kraus.append(np.sqrt(weight) * op)
    return kraus


@dataclass(frozen=True)
class QpuNoiseOverride:
    """Heterogeneous-QPU noise: replacement rates for one named processor.

    ``None`` fields inherit the model's homogeneous rate.
    """

    qpu: str
    p1: float | None = None
    p2: float | None = None
    p_meas: float | None = None

    def validate(self) -> None:
        """Raise :class:`ValueError` on any invalid field."""
        if not self.qpu:
            raise ValueError("QPU override needs a non-empty QPU name")
        for name, rate in (("p1", self.p1), ("p2", self.p2), ("p_meas", self.p_meas)):
            if rate is not None and not 0.0 <= rate <= 1.0:
                raise ValueError(f"override rate {name} for {self.qpu!r} must be in [0, 1]")


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing + readout noise, parameterised as in the paper.

    The network-extension fields (``p_link``, ``p_swap``, ``qpu_overrides``)
    default to the ideal-link values, so a plain ``NoiseModel(p1, p2,
    p_meas)`` is exactly the paper's homogeneous Sec 5.1 model.
    """

    p1: float
    p2: float
    p_meas: float
    p_link: float = 0.0
    p_swap: float = 0.0
    qpu_overrides: tuple[QpuNoiseOverride, ...] = ()

    @classmethod
    def from_base(cls, p: float) -> "NoiseModel":
        """The paper's scaling: p/10 on 1q gates, p on 2q gates, p on measurement."""
        return cls(p1=p / 10.0, p2=p, p_meas=p)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """All error rates zero."""
        return cls(0.0, 0.0, 0.0)

    @property
    def is_noiseless(self) -> bool:
        """Whether every rate (including the network extension) is zero."""
        return (
            self.p1 == 0.0
            and self.p2 == 0.0
            and self.p_meas == 0.0
            and not self.has_link_noise
            and all(
                not any((o.p1, o.p2, o.p_meas)) for o in self.qpu_overrides
            )
        )

    @property
    def has_gate_noise(self) -> bool:
        """Whether gates suffer stochastic faults (compile-relevant: fault
        sites disable fusion, readout flips alone do not)."""
        if self.p1 > 0.0 or self.p2 > 0.0:
            return True
        return any(o.p1 or o.p2 for o in self.qpu_overrides)

    @property
    def has_link_noise(self) -> bool:
        """Whether Bell-generation sites suffer link-dependent faults."""
        return self.p_link > 0.0 or self.p_swap > 0.0

    def _override(self, qpu: str | None) -> QpuNoiseOverride | None:
        if qpu is None or not self.qpu_overrides:
            return None
        for override in self.qpu_overrides:
            if override.qpu == qpu:
                return override
        return None

    def gate_error_rate(self, num_qubits: int, qpu: str | None = None) -> float:
        """Depolarizing rate applied after a gate of the given arity.

        ``qpu`` resolves heterogeneous per-QPU overrides; ``None`` (or an
        un-overridden QPU) uses the homogeneous rates.
        """
        if num_qubits <= 0:
            raise ValueError("gate arity must be positive")
        override = self._override(qpu)
        if num_qubits == 1:
            if override is not None and override.p1 is not None:
                return override.p1
            return self.p1
        if override is not None and override.p2 is not None:
            return override.p2
        return self.p2

    def meas_flip_rate(self, qpu: str | None = None) -> float:
        """Readout flip probability, honouring per-QPU overrides."""
        override = self._override(qpu)
        if override is not None and override.p_meas is not None:
            return override.p_meas
        return self.p_meas

    def link_error_rate(self, hops: int) -> float:
        """Depolarizing rate of one freshly distributed ``hops``-hop pair.

        Each crossed link depolarizes with ``p_link``; each of the
        ``hops - 1`` entanglement-swapping stations adds ``p_swap``; the
        survival probabilities compose multiplicatively.
        """
        if hops < 1:
            raise ValueError("hops must be positive")
        survive = (1.0 - self.p_link) ** hops * (1.0 - self.p_swap) ** (hops - 1)
        return 1.0 - survive

    # ------------------------------------------------------------------
    # Stochastic (Pauli fault) form
    # ------------------------------------------------------------------
    def _sample_pauli_word(
        self, qubits: Sequence[int], rate: float, rng: np.random.Generator
    ) -> list[tuple[int, str]]:
        """One depolarizing draw at the given rate over ``qubits``."""
        if rate == 0.0 or rng.random() >= rate:
            return []
        k = len(qubits)
        while True:
            word = [int(rng.integers(0, 4)) for _ in range(k)]
            if any(word):
                break
        return [
            (q, _PAULI_NAMES[w]) for q, w in zip(qubits, word) if w != 0
        ]

    def sample_gate_fault(
        self, qubits: Sequence[int], rng: np.random.Generator, qpu: str | None = None
    ) -> list[tuple[int, str]]:
        """Sample a Pauli fault after a gate on ``qubits``.

        Returns ``(qubit, pauli)`` pairs with pauli in {X, Y, Z}; empty list
        when no fault fires.  For multi-qubit gates a uniformly random
        non-identity Pauli string over the gate's qubits is drawn.
        """
        return self._sample_pauli_word(qubits, self.gate_error_rate(len(qubits), qpu), rng)

    def sample_link_fault(
        self, qubits: Sequence[int], hops: int, rng: np.random.Generator
    ) -> list[tuple[int, str]]:
        """Sample the hop-weighted fault of one Bell-generation event."""
        if not self.has_link_noise:
            return []
        return self._sample_pauli_word(qubits, self.link_error_rate(hops), rng)

    def sample_measurement_flip(
        self, rng: np.random.Generator, qpu: str | None = None
    ) -> bool:
        """Whether a measurement record is flipped."""
        rate = self.meas_flip_rate(qpu)
        return bool(rate > 0.0 and rng.random() < rate)
