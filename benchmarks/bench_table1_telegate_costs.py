"""Table 1: per-QPU cost of the telegate scheme (Sec 3.3).

Regenerates every row — ancilla, Bell pairs, depth per step — and the
(a)+(b1-b4)x2+(c) total: ancilla n, Bell pairs 2+6n, depth 99.
"""

from conftest import emit

from repro.reporting import Table
from repro.resources import telegate_cost


def test_table1_telegate_costs(once):
    n = 4  # the symbolic n of the paper's table, instantiated
    cost = once(telegate_cost, n)
    table = Table(
        f"Table 1 — telegate scheme cost per QPU (n = {n})",
        ["step", "ancilla", "bell_pairs", "depth", "repetitions"],
    )
    for step in cost.steps:
        table.add_row(
            step=step.label,
            ancilla=step.ancilla,
            bell_pairs=step.bell_pairs,
            depth=step.depth,
            repetitions=step.repetitions,
        )
    table.add_row(
        step="(d) Total",
        ancilla=f"{cost.ancilla} (= n, reuse)",
        bell_pairs=f"{cost.bell_pairs} (= 2 + 6n)",
        depth=f"{cost.depth} (paper: 99)",
        repetitions=1,
    )
    emit("table1_telegate", table)
    assert cost.depth == 99
    assert cost.bell_pairs == 2 + 6 * n
    assert cost.ancilla == n
