"""Observability: tracing, metrics, logging, and run reports.

A lightweight, dependency-free instrumentation layer threaded through the
compile → route → schedule → execute pipeline:

* :class:`Tracer` — nested spans (``trace_id`` / ``span_id`` /
  ``parent_id``) with a thread-safe collector, JSONL export, and
  cross-process stitching (workers return span records inside
  ``BatchStats``, so one trace covers parent and pool);
* :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with p50/p95/p99 queries;
* :class:`Observability` — the bundle the engine and API accept
  (``Engine(obs=Observability())``); the default is a shared no-op whose
  hot-path cost is one attribute lookup and zero allocations;
* :func:`run_report` / :func:`render_timeline` — reduce a trace into a
  JSON run report and a terminal flame timeline (attached to
  :class:`~repro.api.ExperimentResult` under the optional
  ``observability`` key);
* :func:`get_logger` / :func:`enable_logging` — the ``repro.*`` logger
  hierarchy (NullHandler on the root; span ends and pipeline events at
  DEBUG).

Tracing never touches job RNG streams: results are bit-identical with
observability on or off, at any worker count.
"""

from .logs import enable_logging, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
)
from .report import build_run_report, render_timeline, run_report
from .runtime import NOOP, Observability, get_observability, set_observability
from .trace import NoopTracer, Span, Tracer, span_record

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "NOOP",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetrics",
    "NoopTracer",
    "Observability",
    "Span",
    "Tracer",
    "build_run_report",
    "enable_logging",
    "get_logger",
    "get_observability",
    "render_timeline",
    "run_report",
    "set_observability",
    "span_record",
]
