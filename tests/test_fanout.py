"""Tests for constant-depth Fanout and shared-control banks."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.fanout import (
    append_fanout,
    append_parallel_cswap,
    append_parallel_toffoli_bank,
    fanout_ancillas_required,
    toffoli_decomposition_ops,
)
from repro.network import DistributedProgram
from repro.sim import StatevectorSimulator
from repro.utils import kron_all, partial_trace, random_pure_state

RNG = np.random.default_rng(31)
ZERO = np.array([1, 0], dtype=complex)


def mono():
    p = DistributedProgram()
    p.add_qpu("m")
    return p


def check_matches_ideal(program, data_qubits, ideal: Circuit, trials=4):
    circuit = program.build()
    nq = circuit.num_qubits
    width = len(data_qubits)
    u = ideal.to_unitary()
    for _ in range(trials):
        psi = random_pure_state(width, RNG)
        init = kron_all([psi] + [ZERO] * (nq - width))
        result = StatevectorSimulator(seed=int(RNG.integers(1e9))).run(
            circuit, initial_state=init
        )
        rho = partial_trace(result.statevector, data_qubits, nq)
        want = u @ psi
        if not np.allclose(rho, np.outer(want, want.conj()), atol=1e-8):
            return False
    return True


class TestAncillaMath:
    def test_zero_for_single_target(self):
        assert fanout_ancillas_required(1) == 0

    @pytest.mark.parametrize("n,expected", [(2, 2), (3, 4), (4, 4), (5, 6), (8, 8)])
    def test_one_per_target_rounded(self, n, expected):
        assert fanout_ancillas_required(n) == expected


class TestFanout:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_parallel_cx(self, n):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        ts = p.alloc("m", "t", n)
        anc = p.alloc("m", "a", fanout_ancillas_required(n))
        plan = append_fanout(p, c, ts, anc, reset_ancillas=False)
        ideal = Circuit(1 + n)
        for i in range(n):
            ideal.cx(0, 1 + i)
        assert plan.used_measurement
        assert check_matches_ideal(p, [c] + ts, ideal)

    def test_depth_constant_in_targets(self):
        depths = []
        for n in (2, 4, 8, 16):
            p = mono()
            (c,) = p.alloc("m", "c", 1)
            ts = p.alloc("m", "t", n)
            anc = p.alloc("m", "a", fanout_ancillas_required(n))
            append_fanout(p, c, ts, anc)
            depths.append(p.build().depth())
        assert max(depths) - min(depths) <= 1

    def test_fallback_without_ancillas(self):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        ts = p.alloc("m", "t", 3)
        plan = append_fanout(p, c, ts, [])
        assert not plan.used_measurement
        assert plan.copy_layers == 3
        ideal = Circuit(4)
        for i in range(3):
            ideal.cx(0, 1 + i)
        assert check_matches_ideal(p, [c] + ts, ideal)

    def test_single_target_direct(self):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        ts = p.alloc("m", "t", 1)
        plan = append_fanout(p, c, ts, [0])
        assert not plan.used_measurement

    def test_empty_targets_noop(self):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        plan = append_fanout(p, c, [], [])
        assert plan.targets == ()
        assert len(p.build()) == 0

    def test_control_in_targets_rejected(self):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        with pytest.raises(ValueError):
            append_fanout(p, c, [c], [])

    def test_ancilla_reset_allows_reuse(self):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        ts = p.alloc("m", "t", 2)
        anc = p.alloc("m", "a", 2)
        append_fanout(p, c, ts, anc, reset_ancillas=True)
        append_fanout(p, c, ts, anc, reset_ancillas=True)
        ideal = Circuit(3)  # two fanouts cancel
        assert check_matches_ideal(p, [c] + ts, ideal)


class TestToffoliDecomposition:
    def test_seven_t_gates(self):
        ops = toffoli_decomposition_ops()
        t_count = sum(1 for name, _ in ops if name in ("t", "tdg"))
        assert t_count == 7

    def test_four_shared_control_cnots(self):
        ops = toffoli_decomposition_ops()
        from_a = sum(1 for name, wires in ops if name == "cx" and wires[0] == "a")
        assert from_a == 4

    def test_exact_unitary(self):
        from repro.fanout.parallel_toffoli import _append_single_toffoli

        p = mono()
        q = p.alloc("m", "q", 3)
        _append_single_toffoli(p, q[0], q[1], q[2])
        u = p.build().to_unitary()
        assert np.allclose(u, Circuit(3).ccx(0, 1, 2).to_unitary(), atol=1e-10)


class TestToffoliBank:
    @pytest.mark.parametrize("n", [1, 2])
    def test_bank_matches_product_of_ccx(self, n):
        p = mono()
        (a,) = p.alloc("m", "a", 1)
        bs = p.alloc("m", "b", n)
        ts = p.alloc("m", "t", n)
        anc = p.alloc("m", "anc", fanout_ancillas_required(n))
        plan = append_parallel_toffoli_bank(p, a, list(zip(bs, ts)), anc)
        ideal = Circuit(1 + 2 * n)
        for l in range(n):
            ideal.ccx(0, 1 + l, 1 + n + l)
        assert plan.num_fanouts == 4
        assert check_matches_ideal(p, [a] + bs + ts, ideal)

    def test_bank_without_fanout(self):
        p = mono()
        (a,) = p.alloc("m", "a", 1)
        bs = p.alloc("m", "b", 2)
        ts = p.alloc("m", "t", 2)
        plan = append_parallel_toffoli_bank(p, a, list(zip(bs, ts)), use_fanout=False)
        assert plan.num_fanouts == 0
        ideal = Circuit(5)
        for l in range(2):
            ideal.ccx(0, 1 + l, 3 + l)
        assert check_matches_ideal(p, [a] + bs + ts, ideal)

    def test_duplicate_wires_rejected(self):
        p = mono()
        q = p.alloc("m", "q", 3)
        with pytest.raises(ValueError):
            append_parallel_toffoli_bank(p, q[0], [(q[1], q[1])])

    def test_empty_bank(self):
        p = mono()
        (a,) = p.alloc("m", "a", 1)
        plan = append_parallel_toffoli_bank(p, a, [])
        assert plan.num_fanouts == 0 and len(p.build()) == 0

    def test_bank_depth_constant(self):
        # Depth saturates at a constant (small boundary effects below n=6).
        depths = []
        for n in (6, 12, 32):
            p = mono()
            (a,) = p.alloc("m", "a", 1)
            bs = p.alloc("m", "b", n)
            ts = p.alloc("m", "t", n)
            anc = p.alloc("m", "anc", fanout_ancillas_required(n))
            append_parallel_toffoli_bank(p, a, list(zip(bs, ts)), anc)
            depths.append(p.build().depth())
        assert max(depths) == min(depths)

    def test_sequential_depth_grows(self):
        depths = []
        for n in (2, 6):
            p = mono()
            (a,) = p.alloc("m", "a", 1)
            bs = p.alloc("m", "b", n)
            ts = p.alloc("m", "t", n)
            append_parallel_toffoli_bank(p, a, list(zip(bs, ts)), use_fanout=False)
            depths.append(p.build().depth())
        assert depths[1] > depths[0] * 2


class TestParallelCswap:
    @pytest.mark.parametrize("n", [1, 2])
    def test_matches_cswap_product(self, n):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        xs = p.alloc("m", "x", n)
        ys = p.alloc("m", "y", n)
        anc = p.alloc("m", "anc", fanout_ancillas_required(n))
        append_parallel_cswap(p, c, xs, ys, anc)
        ideal = Circuit(1 + 2 * n)
        for l in range(n):
            ideal.cswap(0, 1 + l, 1 + n + l)
        assert check_matches_ideal(p, [c] + xs + ys, ideal)

    def test_length_mismatch(self):
        p = mono()
        (c,) = p.alloc("m", "c", 1)
        xs = p.alloc("m", "x", 2)
        ys = p.alloc("m", "y", 1)
        with pytest.raises(ValueError):
            append_parallel_cswap(p, c, xs, ys)
