"""Scheduling tests: moments, barriers, classical dependencies."""


from repro.circuits import Circuit, Condition, circuit_depth, circuit_moments


class TestMomentGrouping:
    def test_independent_gates_one_moment(self):
        c = Circuit(4).h(0).h(1).x(2).z(3)
        moments = circuit_moments(c)
        assert len(moments) == 1
        assert len(moments[0]) == 4

    def test_dependent_gates_chain(self):
        c = Circuit(2).h(0).cx(0, 1).h(1)
        moments = circuit_moments(c)
        assert [len(m) for m in moments] == [1, 1, 1]

    def test_diamond_dependency(self):
        c = Circuit(3)
        c.h(1)
        c.cx(1, 0)
        c.cx(1, 2)
        moments = circuit_moments(c)
        assert [len(m) for m in moments] == [1, 1, 1]

    def test_gates_pack_asap(self):
        c = Circuit(3)
        c.cx(0, 1)
        c.h(2)  # independent -> packs into moment 0
        moments = circuit_moments(c)
        assert len(moments[0]) == 2

    def test_empty_circuit(self):
        assert circuit_moments(Circuit(3)) == []


class TestBarriers:
    def test_barrier_blocks_packing(self):
        c = Circuit(2)
        c.h(0)
        c.barrier()
        c.h(1)
        assert circuit_depth(c) == 2

    def test_partial_barrier_only_spans_listed_qubits(self):
        c = Circuit(3)
        c.h(0)
        c.barrier([0, 1])
        c.h(1)  # pushed to layer 1 by the barrier
        c.h(2)  # untouched by the barrier -> layer 0
        moments = circuit_moments(c)
        names_layer0 = {(i.name, i.qubits) for i in moments[0]}
        assert ("h", (2,)) in names_layer0
        assert circuit_depth(c) == 2

    def test_barrier_not_a_moment(self):
        c = Circuit(1)
        c.barrier()
        assert circuit_moments(c) == []


class TestClassicalDependencies:
    def test_feedback_waits_for_measurement(self):
        c = Circuit(3, 1)
        c.measure(0, 0)
        c.x(2, condition=Condition((0,), 1))
        # Qubits 0 and 2 are disjoint, but the classical bit serialises them.
        assert circuit_depth(c) == 2

    def test_unconditioned_gate_does_not_wait(self):
        c = Circuit(3, 1)
        c.measure(0, 0)
        c.x(2)
        assert circuit_depth(c) == 1

    def test_two_conditions_wait_for_latest(self):
        c = Circuit(4, 2)
        c.measure(0, 0)
        c.h(1)
        c.cx(1, 2)
        c.measure(2, 1)
        c.x(3, condition=Condition((0, 1), 1))
        moments = circuit_moments(c)
        # The conditioned X must be in the final layer.
        assert moments[-1][0].name == "x"

    def test_measure_depth_toggle(self):
        c = Circuit(1, 1).h(0).measure(0, 0)
        assert circuit_depth(c, count_measurements=True) == 2
        assert circuit_depth(c, count_measurements=False) == 1

    def test_uncounted_measure_still_orders_feedback(self):
        c = Circuit(2, 1)
        c.h(0)
        c.measure(0, 0)
        c.x(1, condition=Condition((0,), 1))
        # Even without counting the measurement layer, the X cannot precede
        # the H on qubit 0's timeline entirely; depth is at least 2 counted.
        assert circuit_depth(c, count_measurements=True) == 3
