"""Tests for the warm process-pool path: batch groups, shared memory, cost model.

The load-bearing invariant under test: results are bit-identical at any
worker count and any dispatch shape, because RNG substreams depend only on
``(job.seed, batch.index)`` and every reduction (worker-side group folds,
parent-side index-ordered combine) is exact and order-insensitive.
"""

from collections import Counter

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.engine import (
    Batch,
    BatchExecutionError,
    CostModel,
    Engine,
    GroupStats,
    Job,
    OutcomeMatrix,
    SharedOutcomeBuffer,
    WorkerJobMiss,
)
from repro.engine.runners import (
    _accumulate_matrix,
    _init_pool_worker,
    execute_batch,
    execute_batch_group,
    execute_batch_outcomes,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import Observability
from repro.obs.trace import NOOP_TRACER
from repro.sim import NoiseModel


def sv_circuit() -> Circuit:
    """Non-Clifford 3-qubit circuit (routes to the vectorized kernel)."""
    circuit = Circuit(3, 3)
    circuit.h(0)
    circuit.t(0)
    circuit.cx(0, 1)
    circuit.rx(0.3, 2)
    circuit.cx(1, 2)
    for q in range(3):
        circuit.measure(q, q)
    return circuit


def sv_job(seed: int = 11, shots: int = 600, **overrides) -> Job:
    return Job(
        circuit=sv_circuit(),
        shots=shots,
        seed=seed,
        batch_size=64,
        readout=(0, 2),
        **overrides,
    )


def link_noise_job(seed: int = 3, shots: int = 400) -> Job:
    """Non-Clifford circuit with a hop-tagged Bell generation + link noise."""
    circuit = Circuit(2, 2)
    circuit.h(0)
    circuit.t(0)
    circuit.append("cx", [0, 1], hops=2)
    circuit.measure(0, 0)
    circuit.measure(1, 1)
    return Job(
        circuit=circuit,
        shots=shots,
        seed=seed,
        batch_size=50,
        noise=NoiseModel(0.01, 0.02, 0.01, p_link=0.1),
    )


def metrics_obs() -> Observability:
    return Observability(tracer=NOOP_TRACER, metrics=MetricsRegistry())


@pytest.fixture(scope="module")
def serial_results():
    """One serial baseline per job flavour, shared across identity tests."""
    with Engine(workers=1, executor="serial") as engine:
        return {
            "sv": engine.run(sv_job()),
            "link": engine.run(link_noise_job()),
        }


class TestProcessPoolBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_statevector_matches_serial(self, workers, serial_results):
        base = serial_results["sv"]
        with Engine(workers=workers, executor="process") as engine:
            result = engine.run(sv_job())
        assert result.counts == base.counts
        assert result.parity_mean == base.parity_mean
        assert result.parity_stderr == base.parity_stderr
        assert result.num_batches == base.num_batches

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_link_noise_matches_serial(self, workers, serial_results):
        base = serial_results["link"]
        with Engine(workers=workers, executor="process") as engine:
            result = engine.run(link_noise_job())
        assert result.counts == base.counts
        assert result.num_batches == base.num_batches

    def test_auto_executor_matches_serial(self, serial_results):
        base = serial_results["sv"]
        with Engine(workers=2, executor="auto") as engine:
            result = engine.run(sv_job())
        assert result.counts == base.counts

    def test_pipelined_sweep_matches_serial(self):
        jobs = [sv_job(seed=s) for s in range(4)]
        with Engine(workers=1, executor="serial") as serial:
            base = serial.run_many(jobs)
        with Engine(workers=2, executor="process") as engine:
            pooled = engine.run_many(jobs)
        assert [r.counts for r in pooled] == [r.counts for r in base]


class TestWarmWorkerProtocol:
    def test_prewarm_reports_worker_pids(self):
        with Engine(workers=2, executor="process") as engine:
            pids = engine.prewarm()
            assert pids and all(isinstance(pid, int) for pid in pids)
        with Engine(workers=2, executor="thread") as engine:
            assert engine.prewarm() == []

    def test_compile_cache_hits_on_later_groups(self):
        # Tiny target group seconds force groups-per-worker to the max, so
        # a single-worker pool sees several groups of one job: the first
        # ships the payload + program, later ones ride the warm caches.
        model = CostModel(target_group_seconds=1e-9)
        obs = metrics_obs()
        with Engine(workers=2, executor="process", cost_model=model) as engine:
            engine.set_observability(obs)
            engine.prewarm()
            engine.run(sv_job())
        hits = obs.metrics.counter("engine.worker_compile", outcome="hit").value
        assert hits > 0
        shipped = obs.metrics.counter("engine.worker_job", payload="full").value
        assert shipped >= 1

    def test_key_only_dispatch_after_warm_shipping(self):
        # Tiny target group seconds -> many groups; only the first
        # ``workers`` ship the job payload, the rest go key-only.  The
        # ipc_bytes counter is stamped at submission time, so it sees the
        # key-only groups no matter which worker ends up serving them.
        model = CostModel(target_group_seconds=1e-9)
        obs = metrics_obs()
        with Engine(workers=2, executor="process", cost_model=model) as engine:
            engine.set_observability(obs)
            engine.prewarm()
            result = engine.run(sv_job())
        with Engine(workers=1, executor="serial") as serial:
            assert serial.run(sv_job()).counts == result.counts
        key_submits = obs.metrics.counter("engine.ipc_bytes", payload="key").value
        assert key_submits > 0

    def test_key_only_group_served_from_worker_cache(self):
        job = sv_job(shots=128)
        key = job.content_hash()
        _init_pool_worker()  # cold cache: nothing remembered yet
        first = execute_batch_group(job, key, (Batch(0, 64),), "statevector")
        assert first.job_shipped
        second = execute_batch_group(None, key, (Batch(1, 64),), "statevector")
        assert not second.job_shipped
        combined = Counter(first.counts)
        combined.update(second.counts)
        folded = Counter()
        for i in range(2):
            folded.update(execute_batch(job, Batch(i, 64), "statevector").counts)
        assert combined == folded

    def test_ipc_bytes_counter_populated(self):
        obs = metrics_obs()
        with Engine(workers=2, executor="process") as engine:
            engine.set_observability(obs)
            engine.run(sv_job())
        shipped = obs.metrics.counter("engine.ipc_bytes", payload="full").value
        assert shipped > 0

    def test_worker_job_miss_raised_and_picklable(self):
        import pickle

        _init_pool_worker()  # clear this process's warm job cache
        with pytest.raises(WorkerJobMiss) as info:
            execute_batch_group(None, "f" * 64, (Batch(0, 10),), "statevector")
        err = pickle.loads(pickle.dumps(info.value))
        assert isinstance(err, WorkerJobMiss)
        assert err.job_key == "f" * 64

    def test_group_fold_matches_per_batch(self):
        job = sv_job(shots=200)
        batches = (Batch(0, 64), Batch(1, 64), Batch(2, 64), Batch(3, 8))
        _init_pool_worker()
        group = execute_batch_group(job, job.content_hash(), batches, "statevector")
        assert isinstance(group, GroupStats)
        assert group.num_batches == 4
        assert group.index == 0
        per_batch = [execute_batch(job, b, "statevector") for b in batches]
        folded = Counter()
        for stats in per_batch:
            folded.update(stats.counts)
        assert group.counts == folded
        assert group.parity_total == sum(s.parity_total for s in per_batch)
        assert group.shots == 200


class TestCancelAndDrain:
    def test_pool_reusable_after_worker_failure(self, serial_results):
        # A zero-norm initial state survives job validation but dies at the
        # first collapse inside the worker — a genuine cross-process error.
        bad = sv_job()
        bad.initial_state = np.zeros(8, dtype=complex)
        with Engine(workers=2, executor="process") as engine:
            with pytest.raises(BatchExecutionError) as info:
                engine.run(bad)
            assert info.value.batch_index is not None
            result = engine.run(sv_job())
        assert result.counts == serial_results["sv"].counts

    def test_pipeline_reusable_after_worker_failure(self, serial_results):
        bad = sv_job()
        bad.initial_state = np.zeros(8, dtype=complex)
        with Engine(workers=2, executor="process") as engine:
            with pytest.raises(BatchExecutionError):
                engine.run_many([sv_job(seed=1), bad])
            results = engine.run_many([sv_job(), sv_job(seed=2)])
        assert results[0].counts == serial_results["sv"].counts


class TestSharedMemoryOutcomes:
    def test_serial_rows_reproduce_counts(self):
        job = sv_job(shots=500)
        with Engine(workers=1, executor="serial") as engine:
            base = engine.run(job)
            with engine.sample_outcomes(sv_job(shots=500)) as matrix:
                assert not matrix.shared
                rows = ["".join(str(int(b)) for b in row) for row in matrix.array]
        assert Counter(rows) == Counter(base.counts)

    def test_pooled_rows_identical_to_serial(self):
        with Engine(workers=1, executor="serial") as serial:
            with serial.sample_outcomes(sv_job(shots=500)) as matrix:
                expected = matrix.copy()
        with Engine(workers=2, executor="process") as engine:
            with engine.sample_outcomes(sv_job(shots=500)) as matrix:
                assert matrix.shared
                np.testing.assert_array_equal(matrix.array, expected)

    def test_buffer_lifetime_and_copy(self):
        buffer = SharedOutcomeBuffer.create(10, 4)
        view = buffer.array
        view[:] = 7
        attached = SharedOutcomeBuffer.attach(buffer.name, 10, 4)
        np.testing.assert_array_equal(attached.copy(), np.full((10, 4), 7))
        attached.close()
        del view
        copy = buffer.copy()
        buffer.close()
        buffer.close()  # idempotent
        np.testing.assert_array_equal(copy, np.full((10, 4), 7))
        with pytest.raises(ValueError):
            _ = buffer.array

    def test_outcome_matrix_close_releases(self):
        matrix = OutcomeMatrix(np.zeros((3, 2), dtype=np.uint8))
        assert not matrix.shared
        matrix.close()
        with pytest.raises(ValueError):
            _ = matrix.array

    def test_forced_outcomes_and_offsets(self):
        job = sv_job(shots=100)
        piece = execute_batch_outcomes(
            job, Batch(0, 40), "statevector", forced_outcomes=(0, 0, 0)
        )
        assert piece.clbits.shape == (40, 3)
        assert not piece.clbits.any()

    def test_ensembles_rejected(self):
        job = sv_job()
        with Engine(workers=1, executor="serial") as engine:
            with pytest.raises(ValueError, match="exact-mode"):
                engine.sample_outcomes(
                    Job(circuit=sv_circuit(), shots=1, seed=0, mode="exact")
                )
        with pytest.raises(ValueError, match="fixed initial state"):
            execute_batch_outcomes(
                Job(
                    circuit=sv_circuit(),
                    shots=10,
                    seed=0,
                    ensembles=(_one_qubit_ensemble(),),
                ),
                Batch(0, 10),
                "statevector",
            )


def _one_qubit_ensemble():
    from repro.engine import Ensemble

    return Ensemble.from_states(
        qubits=(0,), pairs=[(1.0, np.array([1.0, 0.0], dtype=complex))]
    )


class TestCostModel:
    def test_small_job_inlined_on_auto(self):
        model = CostModel()
        plan = model.plan(estimated_seconds=1e-4, num_batches=4, workers=4)
        assert not plan.pooled
        assert "dispatch" in plan.reason

    def test_large_job_fans_out(self):
        model = CostModel()
        plan = model.plan(estimated_seconds=2.0, num_batches=64, workers=4)
        assert plan.pooled
        assert 1 <= plan.num_groups <= 16

    def test_split_covers_every_batch_contiguously(self):
        model = CostModel()
        plan = model.plan(estimated_seconds=2.0, num_batches=10, workers=4)
        batches = [Batch(i, 10) for i in range(10)]
        groups = plan.split(batches)
        flat = [b for group in groups for b in group]
        assert flat == batches
        for group in groups:
            indices = [b.index for b in group]
            assert indices == list(range(indices[0], indices[0] + len(indices)))

    def test_explicit_process_executor_always_pools(self):
        from repro.engine import Scheduler

        scheduler = Scheduler(workers=4, executor="process")
        plan = scheduler.decide(sv_job(shots=70, seed=0), "statevector", 2)
        assert plan.pooled
        scheduler_auto = Scheduler(workers=4, executor="auto")
        tiny = scheduler_auto.decide(sv_job(shots=70, seed=0), "statevector", 2)
        assert not tiny.pooled


class TestVectorizedAccumulate:
    def test_matches_naive_join(self):
        rng = np.random.default_rng(5)
        clbits = rng.integers(0, 2, size=(500, 6)).astype(np.uint8)
        job = Job(circuit=Circuit(6, 6), shots=500, seed=0, readout=(1, 4))
        from repro.engine.runners import BatchStats

        stats = BatchStats(index=0, shots=500)
        _accumulate_matrix(stats, clbits, job)
        expected = Counter("".join(str(int(b)) for b in row) for row in clbits)
        assert stats.counts == expected
        parity = (clbits[:, 1] ^ clbits[:, 4]).astype(np.float64)
        assert stats.parity_total == float((1.0 - 2.0 * parity).sum())

    def test_zero_clbits(self):
        from repro.engine.runners import BatchStats

        job = Job(circuit=Circuit(1, 0), shots=8, seed=0)
        stats = BatchStats(index=0, shots=8)
        _accumulate_matrix(stats, np.zeros((8, 0), dtype=np.uint8), job)
        assert stats.counts == Counter({"": 8})
