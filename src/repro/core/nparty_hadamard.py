"""N-Party Hadamard Test: one GHZ member per party (arXiv:2411.10024).

The opposite end of the GHZ-width family from the single-ancilla test:
instead of COMPAS's ceil(k/2) controllers, *every* QPU hosts a GHZ member
(width r = k, prepared by the same constant-depth distributed fusion of
Fig 4 — k-1 Bell pairs instead of ceil(k/2)-1).  Each controlled
transposition is driven by the GHZ member co-located with its Alice QPU,
so the control is always local and no extra control-distribution Bell
pairs are needed; the X^(x)k / Y X^(x)(k-1) parity of all k members
estimates Re / Im tr(rho_1 ... rho_k), exactly as in Sec 2.3 (the parity
identity holds for any GHZ width).

Cost profile versus COMPAS: roughly double the GHZ fusion links (all at
the cat 1 - 3r/4 floor) and a k-wide readout whose parity degrades with
every member's measurement, traded for a control that never has to move.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..network.program import DistributedProgram
from ..network.topology import Topology, line_topology
from .cswap import DESIGNS, alloc_workspace, two_party_cswap
from .cyclic_shift import interleaved_arrangement, round_position_pairs, slot_assignment
from .ghz import distributed_ghz
from .protocol import ProtocolBuild

__all__ = ["NPartyHadamardBuild", "build_nparty_hadamard"]


@dataclass
class NPartyHadamardBuild(ProtocolBuild):
    """A constructed N-Party Hadamard Test instance."""

    design: str = "teledata"
    bell_pairs_cswaps: int = 0

    def circuit_name(self) -> str:
        return f"nparty_hadamard_{self.design}"

    def resources(self) -> dict:
        resources = super().resources()
        resources["design"] = self.design
        resources["bell_pairs_cswaps"] = self.bell_pairs_cswaps
        return resources


def build_nparty_hadamard(
    k: int,
    n: int,
    design: str = "teledata",
    basis: str | None = None,
    topology: Topology | None = None,
    reset_ancillas: bool = True,
) -> NPartyHadamardBuild:
    """Build the k-member distributed Hadamard test over n-qubit states.

    ``topology`` defaults to a line over ``qpu0 .. qpu{k-1}``; ``basis``
    as in the COMPAS builder.
    """
    if design not in DESIGNS:
        raise ValueError(f"design must be one of {DESIGNS}")
    if basis not in (None, "x", "y"):
        raise ValueError("basis must be None, 'x', or 'y'")
    if k < 2:
        raise ValueError("need at least two parties")
    if n < 1:
        raise ValueError("states need at least one qubit")

    qpu_names = [f"qpu{p}" for p in range(k)]
    if topology is None:
        topology = line_topology(qpu_names)
    elif set(topology.nodes) != set(qpu_names):
        raise ValueError(
            f"topology must connect QPUs {qpu_names}, got {sorted(topology.nodes)}"
        )
    program = DistributedProgram(topology)

    registers = tuple(
        tuple(program.alloc(qpu_names[p], "state", n)) for p in range(k)
    )
    arrangement = interleaved_arrangement(k)
    assignment = slot_assignment(k)
    user_of_position = tuple(assignment[arrangement[p]] for p in range(k))

    controller_positions = list(range(0, k, 2))
    workspaces = {}
    for p in range(k):
        workspaces[p] = alloc_workspace(
            program,
            qpu_names[p],
            n,
            design,
            is_controller=(p in controller_positions),
        )

    stage_depths: dict[str, int] = {}
    mark = program.cursor()

    # ------------------------------------------------------------------
    # Stage 1: distributed GHZ across *all* k QPUs (k - 1 fusion links).
    # ------------------------------------------------------------------
    ghz_plan = distributed_ghz(program, qpu_names, reset_ancillas=reset_ancillas)
    members = list(ghz_plan.members)
    stage_depths["ghz_prep"] = program.build_range(mark, program.cursor()).depth()
    mark = program.cursor()

    # ------------------------------------------------------------------
    # Stage 2: two rounds of transpositions, each controlled by the GHZ
    # member living on its Alice QPU (always local).
    # ------------------------------------------------------------------
    round1, round2 = round_position_pairs(k)
    bells = 0
    for round_index, pairs in enumerate((round1, round2)):
        for a, b in pairs:
            alice_pos = a if round_index == 0 else b
            bob_pos = b if round_index == 0 else a
            report = two_party_cswap(
                program,
                members[alice_pos],
                registers[alice_pos],
                registers[bob_pos],
                workspaces[alice_pos],
                workspaces[bob_pos],
                design=design,
                reset_ancillas=reset_ancillas,
            )
            bells += report.bell_pairs
        stage_depths[f"cswap_round{round_index + 1}"] = program.build_range(
            mark, program.cursor()
        ).depth()
        mark = program.cursor()

    # ------------------------------------------------------------------
    # Stage 3: k-wide GHZ readout.
    # ------------------------------------------------------------------
    readout: list[int] = []
    if basis is not None:
        if basis == "y":
            program.sdg(members[0])
        for g in members:
            program.h(g)
        readout = [program.measure(g) for g in members]
        stage_depths["readout"] = program.build_range(mark, program.cursor()).depth()

    return NPartyHadamardBuild(
        program=program,
        k=k,
        n=n,
        variant="nparty",
        ghz_qubits=tuple(members),
        position_registers=registers,
        user_of_position=user_of_position,
        basis=basis,
        readout_clbits=tuple(readout),
        stage_depths=stage_depths,
        design=design,
        bell_pairs_cswaps=bells,
    )
