"""Network-level noise analysis of Bell-pair distribution (Sec 5.5, Fig 10).

Models each distributed Bell pair as passing one qubit through a
depolarizing channel of strength p (Eq. 5/6), yielding per-teleoperation
fidelity floors (Appendix B, verified here numerically by density-matrix
simulation plus minimisation over input states):

* teleported CNOT:    F >= 1 - 3p/4   (depolarized component floor 1/4)
* teleported Toffoli: F >= 1 - 3p/4   (floor 1/4)
* state teleportation: F >= 1 - p/2   (floor 1/2)

Multiplying the floors over every teleoperation bounds the whole protocol:
``F_tot >= (1 - 3p/4)^{O(nk)}``, so the admissible party count is
``k <= O(eps / (n p))`` — Fig 10 plots that bound for several error budgets
eps together with the logical Bell error rates achieved by the distillation
codes of [5, 46].

Substitution note (documented in DESIGN.md): the codes' logical error rates
are external data; we place the markers with the standard threshold model
``p_L = A (p_phys / p_th)^{ceil(d/2)}`` calibrated so the LP [[544,80,12]]
code lands at the ~1e-6 figure quoted in Sec 5.5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit, Condition
from ..sim.density import DensitySimulator
from ..utils.linalg import partial_trace

__all__ = [
    "bell_pair_depolarized",
    "remote_cnot_fidelity",
    "remote_cnot_fidelity_floor",
    "teleport_fidelity",
    "teleport_fidelity_floor",
    "teleop_fidelity_bound",
    "teleop_count",
    "total_fidelity_bound",
    "max_parties",
    "QECCode",
    "DISTILLATION_CODES",
    "logical_bell_error_rate",
]


# ----------------------------------------------------------------------
# Depolarized-Bell-pair teleoperation fidelities (Appendix B, numerically)
# ----------------------------------------------------------------------
def bell_pair_depolarized(p: float) -> np.ndarray:
    """rho'_bell of Eq. 6: (1-p)|Phi+><Phi+| + p I/4."""
    phi = np.zeros(4, dtype=complex)
    phi[0] = phi[3] = 1.0 / math.sqrt(2)
    return (1.0 - p) * np.outer(phi, phi.conj()) + p * np.eye(4) / 4.0


def _remote_cnot_circuit() -> Circuit:
    """Fig 1b on qubits [control, target, bellA, bellB] (pair pre-shared)."""
    c = Circuit(4, 2, name="remote_cnot_core")
    c.cx(0, 2)
    c.measure(2, 0)
    c.x(3, condition=Condition((0,), 1))
    c.cx(3, 1)
    c.h(3)
    c.measure(3, 1)
    c.z(0, condition=Condition((1,), 1))
    return c


def remote_cnot_fidelity(control: np.ndarray, target: np.ndarray, p: float) -> float:
    """Output fidelity of the teleported CNOT with a depolarized Bell pair."""
    circuit = _remote_cnot_circuit()
    init = np.kron(np.outer(control, control.conj()), np.outer(target, target.conj()))
    init = np.kron(init, bell_pair_depolarized(p))
    rho = DensitySimulator().run(circuit, initial_state=init).final_density()
    reduced = partial_trace(rho, [0, 1], 4)
    ideal = Circuit(2).cx(0, 1).to_unitary() @ np.kron(control, target)
    return float(np.real(np.vdot(ideal, reduced @ ideal)))


def remote_cnot_fidelity_floor(p: float, grid: int = 24) -> float:
    """Worst input-state fidelity (Appendix B.1 predicts 1 - 3p/4)."""
    best = 1.0
    for theta_c in np.linspace(0.0, math.pi, grid):
        for theta_t in np.linspace(0.0, math.pi, grid):
            control = np.array([math.cos(theta_c / 2), math.sin(theta_c / 2)], dtype=complex)
            target = np.array([math.cos(theta_t / 2), math.sin(theta_t / 2)], dtype=complex)
            best = min(best, remote_cnot_fidelity(control, target, p))
    return best


def _teleport_circuit() -> Circuit:
    """Fig 1a on qubits [source, bellA, bellB] (pair pre-shared)."""
    c = Circuit(3, 2, name="teleport_core")
    c.cx(0, 1)
    c.h(0)
    c.measure(0, 0)
    c.measure(1, 1)
    c.x(2, condition=Condition((1,), 1))
    c.z(2, condition=Condition((0,), 1))
    return c


def teleport_fidelity(state: np.ndarray, p: float) -> float:
    """Output fidelity of teleportation through a depolarized Bell pair."""
    circuit = _teleport_circuit()
    init = np.kron(np.outer(state, state.conj()), bell_pair_depolarized(p))
    rho = DensitySimulator().run(circuit, initial_state=init).final_density()
    reduced = partial_trace(rho, [2], 3)
    return float(np.real(np.vdot(state, reduced @ state)))


def teleport_fidelity_floor(p: float, grid: int = 48) -> float:
    """Worst input-state fidelity (Sec 5.5 predicts 1 - p/2)."""
    best = 1.0
    for theta in np.linspace(0.0, math.pi, grid):
        state = np.array([math.cos(theta / 2), math.sin(theta / 2)], dtype=complex)
        best = min(best, teleport_fidelity(state, p))
    return best


# ----------------------------------------------------------------------
# Protocol-level bound and Fig 10
# ----------------------------------------------------------------------
def teleop_fidelity_bound(p: float, kind: str) -> float:
    """Analytic per-teleoperation floor (Sec 5.5)."""
    if kind in ("cnot", "toffoli", "telegate"):
        return 1.0 - 0.75 * p
    if kind == "teledata":
        return 1.0 - 0.5 * p
    raise ValueError("kind must be 'cnot', 'toffoli', 'telegate', or 'teledata'")


def teleop_count(n: int, k: int, design: str) -> dict[str, int]:
    """Teleoperations in one full COMPAS run (k-1 CSWAPs + GHZ prep)."""
    ghz_links = max((k + 1) // 2 - 1, 0)
    cswaps = k - 1
    if design == "teledata":
        return {"teledata": 2 * n * cswaps, "telegate": ghz_links}
    if design == "telegate":
        return {"teledata": 0, "telegate": 3 * n * cswaps + ghz_links}
    raise ValueError("design must be 'teledata' or 'telegate'")


def total_fidelity_bound(n: int, k: int, p: float, design: str = "teledata") -> float:
    """F_tot >= prod of per-teleoperation floors (Sec 5.5)."""
    counts = teleop_count(n, k, design)
    bound = (1.0 - 0.5 * p) ** counts["teledata"] * (1.0 - 0.75 * p) ** counts["telegate"]
    return max(bound, 0.0)


def max_parties(
    p: float,
    epsilon: float,
    n: int = 100,
    design: str = "teledata",
    k_cap: int = 10_000,
) -> int:
    """Largest k with 1 - F_tot <= epsilon (the Fig 10 y-axis)."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    k = 1
    while k < k_cap and 1.0 - total_fidelity_bound(n, k + 1, p, design) <= epsilon:
        k += 1
    return k


@dataclass(frozen=True)
class QECCode:
    """An entanglement-distillation code marker for Fig 10."""

    name: str
    num_physical: int
    num_logical: int
    distance: int

    @property
    def rate(self) -> float:
        """Logical Bell pairs per physical pair."""
        return self.num_logical / self.num_physical

    def label(self) -> str:
        """Paper-style label, e.g. 'LP [[544, 80, 12]]'."""
        return f"{self.name} [[{self.num_physical}, {self.num_logical}, {self.distance}]]"


#: The codes drawn in Fig 10 (from [5, 46]).
DISTILLATION_CODES: tuple[QECCode, ...] = (
    QECCode("HGP", 1225, 49, 8),
    QECCode("LP", 544, 80, 12),
    QECCode("LP", 714, 100, 16),
    QECCode("LP", 1020, 136, 20),
    QECCode("SC", 5800, 1624, 20),
)

#: Threshold-model calibration: LP [[544,80,12]] lands at ~1e-6 (Sec 5.5)
#: for raw Bell infidelity ~1.3e-2 (the trapped-ion figure of [53]).
_MODEL_PREFACTOR = 0.1
_MODEL_P_PHYS = 0.013
_MODEL_P_TH = 0.0886


def logical_bell_error_rate(
    code: QECCode,
    p_phys: float = _MODEL_P_PHYS,
    p_th: float = _MODEL_P_TH,
    prefactor: float = _MODEL_PREFACTOR,
) -> float:
    """Documented substitution: p_L = A (p/p_th)^(d/2) marker placement."""
    exponent = math.ceil(code.distance / 2)
    return prefactor * (p_phys / p_th) ** exponent
