"""Tests for the Sec 7 extension: weighted sums of multivariate traces."""

import numpy as np
import pytest

from repro.core import estimate_trace_sum, exact_trace_sum
from repro.utils import random_density_matrix

RNG = np.random.default_rng(83)


class TestExact:
    def test_single_term(self):
        states = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        got = exact_trace_sum([states], [2.0])
        want = 2.0 * np.trace(states[0] @ states[1])
        assert np.allclose(got, want)

    def test_two_terms(self):
        a = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        b = [random_density_matrix(1, rng=RNG) for _ in range(3)]
        got = exact_trace_sum([a, b], [1.0, -0.5])
        want = np.trace(a[0] @ a[1]) - 0.5 * np.trace(b[0] @ b[1] @ b[2])
        assert np.allclose(got, want)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            exact_trace_sum([[np.eye(2) / 2]], [1.0, 2.0])


class TestEstimated:
    def test_matches_exact_within_error(self):
        a = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        b = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        result = estimate_trace_sum([a, b], [1.0, 0.5], shots=3000, seed=1, variant="b")
        exact = exact_trace_sum([a, b], [1.0, 0.5])
        assert abs(result.estimate - exact) < 5 * max(result.stderr, 0.01) + 0.05

    def test_singleton_group_costs_no_shots(self):
        rho = random_density_matrix(1, rng=RNG)
        result = estimate_trace_sum([[rho]], [3.0], shots=100, seed=2)
        assert result.estimate == pytest.approx(3.0)
        assert result.terms == [None]
        assert result.stderr == 0.0

    def test_zero_weight_skipped(self):
        a = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        b = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        result = estimate_trace_sum([a, b], [1.0, 0.0], shots=400, seed=3, variant="b")
        assert result.terms[1] is None

    def test_shot_allocation_prefers_heavy_weights(self):
        a = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        b = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        result = estimate_trace_sum(
            [a, b], [10.0, 1.0], shots=2200, seed=4, variant="b"
        )
        heavy = result.terms[0].shots_re + result.terms[0].shots_im
        light = result.terms[1].shots_re + result.terms[1].shots_im
        assert heavy > 4 * light

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_trace_sum([], [], shots=10)
        with pytest.raises(ValueError):
            estimate_trace_sum([[np.eye(2) / 2]], [1.0, 1.0], shots=10)

    def test_mixed_group_sizes(self):
        rho = random_density_matrix(1, rng=RNG)
        pair = [random_density_matrix(1, rng=RNG) for _ in range(2)]
        result = estimate_trace_sum(
            [[rho], pair], [0.5, 1.0], shots=1500, seed=5, variant="b"
        )
        exact = 0.5 + np.trace(pair[0] @ pair[1])
        assert abs(result.estimate - exact) < 0.2
