"""repro — reproduction of COMPAS (ASPLOS 2026).

A from-scratch implementation of the distributed multi-party SWAP test of
Goldstein-Gelb et al., including every substrate the paper relies on:
circuit IR, statevector / density-matrix / stabilizer simulators, a
distributed QPU network model with Bell-pair accounting, teleoperation
primitives, the constant-depth Fanout, the COMPAS protocol itself, the
paper's resource and noise analyses, the Section 6 applications, and a
parallel execution engine (batched shot scheduling, backend auto-selection,
result caching) through which all shot execution flows.

Quickstart::

    import numpy as np
    from repro import Engine, multiparty_swap_test, random_density_matrix

    states = [random_density_matrix(1) for _ in range(3)]
    with Engine(workers=4, cache=True) as engine:
        result = multiparty_swap_test(states, shots=20000, seed=7, engine=engine)
    exact = np.trace(states[0] @ states[1] @ states[2])
    print(result.estimate, exact)
"""

from .circuits import Circuit, Condition, Instruction
from .engine import Engine, Job, JobResult, ResultCache
from .sim import (
    DensitySimulator,
    NoiseModel,
    Pauli,
    PauliFrameSimulator,
    StatevectorSimulator,
    TableauSimulator,
)
from .utils import (
    ghz_state,
    random_density_matrix,
    random_pure_state,
    state_fidelity,
    thermal_state,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Condition",
    "Instruction",
    "Engine",
    "Job",
    "JobResult",
    "ResultCache",
    "DensitySimulator",
    "NoiseModel",
    "Pauli",
    "PauliFrameSimulator",
    "StatevectorSimulator",
    "TableauSimulator",
    "ghz_state",
    "random_density_matrix",
    "random_pure_state",
    "state_fidelity",
    "thermal_state",
    "multiparty_swap_test",
    "MultivariateTraceResult",
    "__version__",
]


def __getattr__(name: str):
    # Late imports avoid a circular dependency: repro.core imports repro.sim.
    if name == "multiparty_swap_test":
        from .core.estimator import multiparty_swap_test

        return multiparty_swap_test
    if name == "MultivariateTraceResult":
        from .core.estimator import MultivariateTraceResult

        return MultivariateTraceResult
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
