"""The protocol-family abstraction: one interface over every estimator.

COMPAS (Sec 3) is one point in a family of distributed overlap estimators
that all load user states into position registers, apply some controlled
permutation structure, and read a parity off a control register:

* the monolithic SWAP-test variants (:mod:`repro.core.swap_test`),
* COMPAS itself (:mod:`repro.core.compas`),
* the pairwise Multi-state Swap Test (:mod:`repro.core.multistate_swap`,
  arXiv:2205.07171),
* the single-circuit N-state test (:mod:`repro.core.nstate_swap`,
  arXiv:2110.13261),
* the N-Party Hadamard Test (:mod:`repro.core.nparty_hadamard`,
  arXiv:2411.10024).

:class:`ProtocolBuild` is the shared contract: a built
:class:`~repro.network.program.DistributedProgram` plus the metadata the
estimation pipeline needs (which user state loads where, which clbits
carry the parity, what the circuit consumed).  :func:`protocol_job`
packages any build as a content-hashed :class:`~repro.engine.Job`, so
every family member runs through the unmodified Engine/Scheduler path —
cached, deterministic, and bit-identical at any worker count.

:data:`FAMILY` names the members the analysis layer can build and rank
(:func:`family_builds`); a member may expand to several circuits (the
multi-state Gram campaign builds one per pair).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..engine import Ensemble, Job
from ..network.lowering import LoweredProgram, lower_program
from ..network.program import DistributedProgram, LocalityReport
from ..sim.compile import get_capabilities
from ..sim.noisemodel import NoiseModel

__all__ = ["ProtocolBuild", "protocol_job", "FAMILY", "family_builds"]

#: Family members the analysis layer ranks (see :func:`family_builds`).
FAMILY = (
    "compas-teledata",
    "compas-telegate",
    "naive",
    "multistate",
    "nstate",
    "nparty",
)


@dataclass
class ProtocolBuild:
    """One constructed overlap-estimator circuit plus its metadata.

    Every field has a default so subclasses may add defaulted fields of
    their own (dataclass inheritance); builders always construct by
    keyword.  ``position_registers`` need not have ``k`` entries — the
    pairwise multi-state circuit loads only two of the ``k`` user states
    per build, with ``user_of_position`` indexing into the full list.
    """

    program: DistributedProgram | None = None
    k: int = 0
    n: int = 0
    variant: str = ""
    ghz_qubits: tuple[int, ...] = ()
    position_registers: tuple[tuple[int, ...], ...] = ()
    user_of_position: tuple[int, ...] = ()
    basis: str | None = None
    readout_clbits: tuple[int, ...] = ()
    stage_depths: dict[str, int] = field(default_factory=dict)

    def circuit_name(self) -> str:
        """Name of the flat circuit (subclasses keep their legacy names)."""
        return self.variant or "protocol"

    def circuit(self):
        """The flat circuit (build lazily so callers can inspect stages)."""
        return self.program.build(name=self.circuit_name())

    @property
    def ghz_width(self) -> int:
        """Width of the control register read out for the parity."""
        return len(self.ghz_qubits)

    @property
    def total_qubits(self) -> int:
        """All qubits including data, control, and ancillas."""
        return self.program.machine.num_qubits

    def locality(self) -> LocalityReport:
        """Audit that only Bell generation spans QPUs."""
        return self.program.audit_locality()

    def lowered(self, bell_latency: float = 1.0) -> LoweredProgram:
        """The scheduled, QPU-attributed lowering (measured accounting)."""
        return lower_program(self.program, bell_latency=bell_latency)

    def resources(self) -> dict:
        """Resource summary: Bell pairs, qubits, depth per stage."""
        return {
            "variant": self.variant,
            "k": self.k,
            "n": self.n,
            "ghz_width": self.ghz_width,
            "total_qubits": self.total_qubits,
            "max_qubits_per_qpu": self.program.machine.max_qubits_per_qpu(),
            "bell_pairs": self.program.ledger.summary(),
            "stage_depths": dict(self.stage_depths),
        }


def _eigen_ensembles(
    states: Sequence[np.ndarray],
) -> list[list[tuple[float, np.ndarray]]]:
    ensembles = []
    for rho in states:
        rho = np.asarray(rho, dtype=complex)
        if rho.ndim == 1:
            ensembles.append([(1.0, rho)])
            continue
        weights, vectors = np.linalg.eigh(rho)
        ensemble = [
            (float(w), vectors[:, i])
            for i, w in enumerate(np.real(weights))
            if w > 1e-12
        ]
        ensembles.append(ensemble)
    return ensembles


def protocol_job(
    build: ProtocolBuild,
    states: Sequence[np.ndarray],
    shots: int,
    seed: int,
    noise: NoiseModel | None = None,
    batch_size: int | None = None,
    backend: str | None = None,
) -> Job:
    """Package a built (readout-carrying) protocol circuit as an engine job.

    Each loaded position becomes a per-shot :class:`~repro.engine.Ensemble`
    over its user state's eigen-decomposition (pure states degenerate to a
    single component).  The circuit's capability flags (a cached scan —
    full compilation is left to the executing worker so the engine's
    compile-time accounting stays honest) are recorded in the job
    metadata.  ``backend`` optionally pins a simulator (e.g.
    ``"statevector-ref"`` for the per-shot reference path).
    """
    if build.basis is None:
        raise ValueError("build must include a readout basis")
    ensembles = []
    for position in range(len(build.position_registers)):
        state = states[build.user_of_position[position]]
        pairs = _eigen_ensembles([state])[0]
        ensembles.append(
            Ensemble.from_states(build.position_registers[position], pairs)
        )
    circuit = build.circuit()
    capabilities = get_capabilities(circuit)
    return Job(
        circuit=circuit,
        shots=shots,
        seed=seed,
        noise=noise,
        ensembles=tuple(ensembles),
        readout=build.readout_clbits,
        batch_size=batch_size,
        backend=backend,
        metadata={
            "variant": build.variant,
            "k": build.k,
            "n": build.n,
            "compiled": {
                "instructions": len(circuit.instructions),
                "num_measurements": capabilities.num_measurements,
                "is_clifford": capabilities.is_clifford,
                "is_frame_compatible": capabilities.is_frame_compatible,
            },
        },
    )


def family_builds(member: str, k: int, n: int, basis: str = "x", topology=None):
    """Build one family member's circuit(s) for analysis and accounting.

    Returns a list of builds — usually one; the pairwise multi-state
    campaign returns ``C(k, 2)`` (one circuit per unordered state pair),
    whose Bell events the caller aggregates.  Everything returned exposes
    ``.program`` (ledger, lowering), so the link-noise bounds and measured
    accounting treat every member identically.
    """
    if member not in FAMILY:
        raise ValueError(f"member must be one of {FAMILY}")
    if member in ("compas-teledata", "compas-telegate"):
        from .compas import build_compas

        design = member.split("-", 1)[1]
        return [build_compas(k, n, design=design, basis=basis, topology=topology)]
    if member == "naive":
        from .naive import build_naive_distribution

        return [build_naive_distribution(k, n, basis=basis, topology=topology)]
    if member == "multistate":
        from .multistate_swap import build_multistate_swap

        return [
            build_multistate_swap(k, n, pair=(i, j), basis="x", topology=topology)
            for i in range(k)
            for j in range(i + 1, k)
        ]
    if member == "nstate":
        from .nstate_swap import build_nstate_swap

        return [build_nstate_swap(k, n, basis=basis, topology=topology)]
    from .nparty_hadamard import build_nparty_hadamard

    return [build_nparty_hadamard(k, n, basis=basis, topology=topology)]
