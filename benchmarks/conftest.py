"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it prints the
same rows/series the paper reports (visible with ``pytest -s``) and persists
the raw data as JSON under ``benchmarks/out/`` for EXPERIMENTS.md.

Scale knobs: the paper's own artifact takes ~5 hours; these defaults are
sized for minutes.  Set ``REPRO_BENCH_SCALE=full`` for paper-scale shots,
``REPRO_BENCH_SCALE=smoke`` for the CI smoke tier (seconds).
"""

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
FULL_SCALE = SCALE == "full"
SMOKE = SCALE == "smoke"


def scaled(full: int, quick: int, smoke: int | None = None) -> int:
    """Pick a shot budget for the active benchmark scale tier."""
    if FULL_SCALE:
        return full
    if SMOKE:
        return smoke if smoke is not None else max(1, quick // 4)
    return quick


def cpu_count() -> int:
    """Usable CPUs (affinity-aware on Linux, portable elsewhere)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


WORKERS = max(1, min(4, cpu_count()))


def make_engine(cache=True):
    """The benchmarks' shared engine configuration.

    Process pool when real parallelism is available (the pure-Python
    simulators are GIL-bound, so threads cannot speed them up), serial
    otherwise.
    """
    from repro.engine import Engine

    executor = "process" if WORKERS > 1 else "serial"
    return Engine(workers=WORKERS, executor=executor, cache=cache)


def emit(name: str, payload, wall_time: float | None = None, engine=None, results=None,
         meta=None) -> None:
    """Print a result object and persist its JSON dump.

    ``wall_time`` (seconds) and ``engine`` (a :class:`repro.engine.Engine`,
    whose cumulative statistics — jobs, shots, backend mix, cache hit/miss
    counters — are snapshotted) are recorded under a ``meta`` key in the
    persisted payload; ``meta`` merges extra benchmark-specific keys into
    it (e.g. the visible CPU count a speedup gate assumed).  ``results`` is a sequence of
    :class:`repro.api.ExperimentResult` envelopes (or a
    :class:`repro.api.SweepResult`): their ``to_dict()`` output is
    persisted verbatim under ``experiment_results`` so every benchmark
    point stays replayable (specs, recorded seeds, provenance hashes).
    """
    OUT_DIR.mkdir(exist_ok=True)
    text = payload.to_text()
    print()
    print(text)
    document = json.loads(payload.to_json())
    extra_meta = dict(meta) if meta else {}
    meta = {"wall_time_s": wall_time}
    if engine is not None:
        stats = engine.stats_dict()
        meta["engine"] = stats
        meta["compile_time_s"] = stats.get("compile_time", 0.0)
        meta["execute_time_s"] = stats.get("execute_time", 0.0)
        print(f"engine: {json.dumps(stats)}")
        print(
            f"compile time: {meta['compile_time_s']:.4f}s / "
            f"execute time: {meta['execute_time_s']:.4f}s"
        )
    if wall_time is not None:
        print(f"wall time: {wall_time:.2f}s")
    meta.update(extra_meta)
    document["meta"] = meta
    if results is not None:
        if hasattr(results, "results"):  # a SweepResult
            results = results.results()
        document["experiment_results"] = [r.to_dict() for r in results]
    (OUT_DIR / f"{name}.json").write_text(json.dumps(document))


@contextmanager
def stopwatch():
    """Measure a with-block's wall time: ``elapsed()`` after the block."""
    start = time.perf_counter()
    stop = {"at": None}

    def elapsed() -> float:
        return (stop["at"] or time.perf_counter()) - start

    try:
        yield elapsed
    finally:
        stop["at"] = time.perf_counter()


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (heavy simulations)."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return runner
