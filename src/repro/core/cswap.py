"""Two-party controlled-SWAP: the telegate and teledata designs (Fig 6).

Alice holds the control qubit and an n-qubit register x; Bob holds an
n-qubit register y.  Both designs implement CSWAP(control; x, y) using only
local gates, pre-shared Bell pairs, and classical messages:

* **telegate** (Sec 3.3): CSWAP = CX(y,x) . CCX(c,x,y) . CX(y,x); the CX
  layers become teleported CNOTs (one Bell pair each, 2n per round) and the
  Toffoli layer becomes teleported Toffolis via a local AND ancilla (one
  Bell pair each, n per round) whose local shared-control Toffolis are
  parallelised by Fanout.
* **teledata** (Sec 3.4): teleport y to Alice (n Bell pairs), perform the
  CSWAP locally with the Fanout bank, teleport it back (n Bell pairs).

Each QPU owns a :class:`QpuWorkspace` of reusable scratch qubits (Bell
slots, fanout ancillas, AND/destination ancillas); every teleoperation
resets what it consumed, so one workspace serves both CSWAP rounds —
the paper's Sec 3.6 qubit-reuse discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from ..fanout.fanout import fanout_ancillas_required
from ..fanout.parallel_toffoli import (
    append_parallel_cswap,
    append_parallel_toffoli_bank,
)
from ..network.program import DistributedProgram
from ..teleport.teledata import teleport_qubit
from ..teleport.telegate import cat_disentangle, cat_entangle

__all__ = ["QpuWorkspace", "CswapReport", "alloc_workspace", "two_party_cswap", "DESIGNS"]

DESIGNS = ("telegate", "teledata")


@dataclass
class QpuWorkspace:
    """Reusable scratch registers on one QPU."""

    qpu: str
    n: int
    fanout: list[int] = field(default_factory=list)
    and_ancillas: list[int] = field(default_factory=list)
    bell_slots: list[int] = field(default_factory=list)
    dest: list[int] = field(default_factory=list)

    def scratch_qubits(self) -> list[int]:
        """Every scratch qubit in the workspace."""
        return self.fanout + self.and_ancillas + self.bell_slots + self.dest


def alloc_workspace(
    program: DistributedProgram,
    qpu: str,
    n: int,
    design: str,
    is_controller: bool,
    suffix: str = "",
) -> QpuWorkspace:
    """Allocate the scratch a QPU needs for its CSWAP roles.

    Controllers (Alice role) need fanout ancillas plus design-specific
    scratch; every QPU needs Bell slots for the teleoperations it joins.
    """
    if design not in DESIGNS:
        raise ValueError(f"design must be one of {DESIGNS}")
    ws = QpuWorkspace(qpu=qpu, n=n)
    ws.bell_slots = program.alloc(qpu, f"bell_slots{suffix}", n)
    if is_controller:
        ws.fanout = program.alloc(qpu, f"fanout{suffix}", fanout_ancillas_required(n))
        if design == "telegate":
            ws.and_ancillas = program.alloc(qpu, f"and{suffix}", n)
        else:
            ws.dest = program.alloc(qpu, f"dest{suffix}", n)
    return ws


@dataclass
class CswapReport:
    """What one two-party CSWAP consumed."""

    design: str
    bell_pairs: int
    n: int


def two_party_cswap(
    program: DistributedProgram,
    control: int,
    xs: Sequence[int],
    ys: Sequence[int],
    alice_ws: QpuWorkspace,
    bob_ws: QpuWorkspace,
    design: str = "teledata",
    reset_ancillas: bool = True,
) -> CswapReport:
    """CSWAP(control; x, y) across two QPUs.

    ``control`` and ``xs`` live on Alice's QPU (= ``alice_ws.qpu``); ``ys``
    on Bob's.  Returns the Bell-pair count consumed (3n telegate / 2n
    teledata — Table 3 rows a, b per round).
    """
    n = len(xs)
    if len(ys) != n:
        raise ValueError("register width mismatch")
    if design not in DESIGNS:
        raise ValueError(f"design must be one of {DESIGNS}")
    alice = alice_ws.qpu
    bob = bob_ws.qpu
    if program.machine.owner(control) != alice:
        raise ValueError("control must live on Alice's QPU")
    for q in xs:
        if program.machine.owner(q) != alice:
            raise ValueError("x register must live on Alice's QPU")
    for q in ys:
        if program.machine.owner(q) != bob:
            raise ValueError("y register must live on Bob's QPU")

    if design == "teledata":
        bells = _teledata_cswap(program, control, xs, ys, alice_ws, bob_ws, reset_ancillas)
    else:
        bells = _telegate_cswap(program, control, xs, ys, alice_ws, bob_ws, reset_ancillas)
    return CswapReport(design=design, bell_pairs=bells, n=n)


# ----------------------------------------------------------------------
def _teledata_cswap(
    program: DistributedProgram,
    control: int,
    xs: Sequence[int],
    ys: Sequence[int],
    alice_ws: QpuWorkspace,
    bob_ws: QpuWorkspace,
    reset_ancillas: bool,
) -> int:
    n = len(xs)
    bells = 0
    # (1) Bob teleports y to Alice's destination ancillas (n Bell pairs);
    # the Bell pairs' remote halves *are* the destination register.
    for l in range(n):
        program.create_bell_pair(bob_ws.bell_slots[l], alice_ws.dest[l], purpose="teledata-in")
        bells += 1
        teleport_qubit(
            program,
            source=ys[l],
            bell_local=bob_ws.bell_slots[l],
            bell_remote=alice_ws.dest[l],
        )
    # (2) Local constant-depth CSWAP on Alice.
    append_parallel_cswap(
        program,
        control,
        list(xs),
        list(alice_ws.dest),
        alice_ws.fanout,
        reset_ancillas=reset_ancillas,
    )
    # (3) Teleport back onto Bob's (now reset) original qubits.
    for l in range(n):
        program.create_bell_pair(alice_ws.bell_slots[l], ys[l], purpose="teledata-out")
        bells += 1
        teleport_qubit(
            program,
            source=alice_ws.dest[l],
            bell_local=alice_ws.bell_slots[l],
            bell_remote=ys[l],
        )
    return bells


def _remote_cx_layer(
    program: DistributedProgram,
    controls: Sequence[int],
    targets: Sequence[int],
    control_ws: QpuWorkspace,
    target_ws: QpuWorkspace,
) -> int:
    """Parallel teleported CNOTs control_l -> target_l (one Bell pair each)."""
    bells = 0
    for l, (c, t) in enumerate(zip(controls, targets)):
        program.create_bell_pair(
            control_ws.bell_slots[l], target_ws.bell_slots[l], purpose="telegate-cx"
        )
        bells += 1
        link = cat_entangle(
            program, c, control_ws.bell_slots[l], target_ws.bell_slots[l]
        )
        program.cx(link.mirror, t)
        cat_disentangle(program, link)
    return bells


def _telegate_cswap(
    program: DistributedProgram,
    control: int,
    xs: Sequence[int],
    ys: Sequence[int],
    alice_ws: QpuWorkspace,
    bob_ws: QpuWorkspace,
    reset_ancillas: bool,
) -> int:
    n = len(xs)
    bells = 0
    # (1) CX(y_l -> x_l): control on Bob, target on Alice.
    bells += _remote_cx_layer(program, ys, xs, bob_ws, alice_ws)
    # (2) CCX(control, x_l -> y_l): compute AND locally (Fanout bank),
    # drive remote CNOTs, uncompute.
    append_parallel_toffoli_bank(
        program,
        control,
        list(zip(xs, alice_ws.and_ancillas)),
        alice_ws.fanout,
        reset_ancillas=reset_ancillas,
    )
    bells += _remote_cx_layer(program, alice_ws.and_ancillas, ys, alice_ws, bob_ws)
    append_parallel_toffoli_bank(
        program,
        control,
        list(zip(xs, alice_ws.and_ancillas)),
        alice_ws.fanout,
        reset_ancillas=reset_ancillas,
    )
    # (3) CX(y_l -> x_l) again.
    bells += _remote_cx_layer(program, ys, xs, bob_ws, alice_ws)
    return bells
