"""Entanglement spectroscopy of a partially entangled pair (Sec 6.2).

Builds the state cos(theta)|00> + sin(theta)|11>, whose half-chain
entanglement spectrum is {cos^2, sin^2}, measures tr(rho_A^m) with
``Experiment.spectroscopy``, and recovers the spectrum through the
Newton-Girard identity — the Johri-Steiger-Troyer protocol [30] on COMPAS
circuits.

Run:  python examples/entanglement_spectroscopy.py
"""

import math

import numpy as np

from repro import Experiment


def partially_entangled(theta: float) -> np.ndarray:
    state = np.zeros(4, dtype=complex)
    state[0b00] = math.cos(theta)
    state[0b11] = math.sin(theta)
    return state


def main() -> None:
    print("half-chain entanglement spectrum of cos|00> + sin|11>")
    print(f"{'theta':>8} {'exact':>18} {'recovered':>22} {'gap':>8}")
    for theta in (0.2, math.pi / 6, math.pi / 4):
        psi = partially_entangled(theta)
        exact = sorted([math.cos(theta) ** 2, math.sin(theta) ** 2], reverse=True)
        result = Experiment.spectroscopy(
            psi, keep=[0], num_qubits=2, max_order=2,
            shots=20000, seed=int(theta * 100), variant="d",
        ).run()
        spectrum = result.raw
        recovered = [f"{v:.3f}" for v in spectrum.eigenvalues]
        print(
            f"{theta:>8.3f} {str([round(e, 3) for e in exact]):>18} "
            f"{str(recovered):>22} {spectrum.gap():>8.3f}"
        )
    print("\ntheta = pi/4 is maximally entangled: a flat {0.5, 0.5} spectrum")
    print("(the degenerate point where shot noise is amplified the most).")


if __name__ == "__main__":
    main()
