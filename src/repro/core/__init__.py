"""COMPAS core: cyclic shift, GHZ prep, CSWAP designs, protocol, estimator."""

from .compas import CompasBuild, build_compas
from .cswap import DESIGNS, CswapReport, QpuWorkspace, alloc_workspace, two_party_cswap
from .cyclic_shift import (
    cyclic_shift_unitary,
    induced_state_cycle,
    interleaved_arrangement,
    multivariate_trace,
    permutation_unitary,
    round_position_pairs,
    slot_assignment,
    trace_order,
)
from .estimator import (
    MultivariateTraceResult,
    assemble_initial_state,
    exact_swap_test_expectation,
    multiparty_swap_test,
    run_swap_test_shots,
    sample_pure_inputs,
    swap_test_job,
)
from .ghz import GhzPlan, distributed_ghz, local_ghz_constant_depth, local_ghz_linear
from .multistate_swap import MultistateSwapBuild, build_multistate_swap
from .nparty_hadamard import NPartyHadamardBuild, build_nparty_hadamard
from .nstate_swap import NStateSwapBuild, build_nstate_swap
from .protocol import FAMILY, ProtocolBuild, family_builds, protocol_job
from .swap_test import VARIANTS, SwapTestBuild, build_monolithic_swap_test
from .trace_sum import TraceSumResult, estimate_trace_sum, exact_trace_sum

__all__ = [
    "CompasBuild",
    "build_compas",
    "DESIGNS",
    "CswapReport",
    "QpuWorkspace",
    "alloc_workspace",
    "two_party_cswap",
    "cyclic_shift_unitary",
    "induced_state_cycle",
    "interleaved_arrangement",
    "multivariate_trace",
    "permutation_unitary",
    "round_position_pairs",
    "slot_assignment",
    "trace_order",
    "MultivariateTraceResult",
    "assemble_initial_state",
    "exact_swap_test_expectation",
    "multiparty_swap_test",
    "run_swap_test_shots",
    "sample_pure_inputs",
    "swap_test_job",
    "GhzPlan",
    "distributed_ghz",
    "local_ghz_constant_depth",
    "local_ghz_linear",
    "MultistateSwapBuild",
    "build_multistate_swap",
    "NPartyHadamardBuild",
    "build_nparty_hadamard",
    "NStateSwapBuild",
    "build_nstate_swap",
    "FAMILY",
    "ProtocolBuild",
    "family_builds",
    "protocol_job",
    "VARIANTS",
    "SwapTestBuild",
    "build_monolithic_swap_test",
    "TraceSumResult",
    "estimate_trace_sum",
    "exact_trace_sum",
]
