"""The paper's circuit-level noise model (Sec 5.1).

For a base noise level ``p``:

* single-qubit gates suffer depolarizing noise of rate ``p / 10``,
* two-qubit gates suffer depolarizing noise of rate ``p``,
* measurements are flipped with probability ``p``.

The model is exposed in two interchangeable forms: Kraus channels for the
density-matrix simulator and stochastic Pauli fault sampling for the
statevector-trajectory and Pauli-frame simulators (depolarizing noise is a
Pauli mixture, so both forms describe the same channel).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..circuits.gates import I2, X, Y, Z

__all__ = ["NoiseModel", "depolarizing_kraus", "PAULI_MATRICES"]

PAULI_MATRICES = {"I": I2, "X": X, "Y": Y, "Z": Z}

_PAULI_NAMES = ("I", "X", "Y", "Z")


def depolarizing_kraus(probability: float, num_qubits: int) -> list[np.ndarray]:
    """Kraus operators of the ``num_qubits``-qubit depolarizing channel.

    With probability ``probability`` a uniformly random *non-identity* Pauli
    is applied.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    labels = ["".join(t) for t in itertools.product(_PAULI_NAMES, repeat=num_qubits)]
    non_identity = [lbl for lbl in labels if set(lbl) != {"I"}]
    kraus = []
    identity = np.eye(2**num_qubits, dtype=complex)
    kraus.append(np.sqrt(1.0 - probability) * identity)
    weight = probability / len(non_identity)
    for lbl in non_identity:
        op = np.array([[1.0]], dtype=complex)
        for ch in lbl:
            op = np.kron(op, PAULI_MATRICES[ch])
        kraus.append(np.sqrt(weight) * op)
    return kraus


@dataclass(frozen=True)
class NoiseModel:
    """Depolarizing + readout noise, parameterised as in the paper."""

    p1: float
    p2: float
    p_meas: float

    @classmethod
    def from_base(cls, p: float) -> "NoiseModel":
        """The paper's scaling: p/10 on 1q gates, p on 2q gates, p on measurement."""
        return cls(p1=p / 10.0, p2=p, p_meas=p)

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """All error rates zero."""
        return cls(0.0, 0.0, 0.0)

    @property
    def is_noiseless(self) -> bool:
        """Whether every rate is exactly zero."""
        return self.p1 == 0.0 and self.p2 == 0.0 and self.p_meas == 0.0

    @property
    def has_gate_noise(self) -> bool:
        """Whether gates suffer stochastic faults (compile-relevant: fault
        sites disable fusion, readout flips alone do not)."""
        return self.p1 > 0.0 or self.p2 > 0.0

    def gate_error_rate(self, num_qubits: int) -> float:
        """Depolarizing rate applied after a gate of the given arity."""
        if num_qubits <= 0:
            raise ValueError("gate arity must be positive")
        if num_qubits == 1:
            return self.p1
        return self.p2

    # ------------------------------------------------------------------
    # Stochastic (Pauli fault) form
    # ------------------------------------------------------------------
    def sample_gate_fault(
        self, qubits: Sequence[int], rng: np.random.Generator
    ) -> list[tuple[int, str]]:
        """Sample a Pauli fault after a gate on ``qubits``.

        Returns ``(qubit, pauli)`` pairs with pauli in {X, Y, Z}; empty list
        when no fault fires.  For multi-qubit gates a uniformly random
        non-identity Pauli string over the gate's qubits is drawn.
        """
        rate = self.gate_error_rate(len(qubits))
        if rate == 0.0 or rng.random() >= rate:
            return []
        k = len(qubits)
        while True:
            word = [int(rng.integers(0, 4)) for _ in range(k)]
            if any(word):
                break
        return [
            (q, _PAULI_NAMES[w]) for q, w in zip(qubits, word) if w != 0
        ]

    def sample_measurement_flip(self, rng: np.random.Generator) -> bool:
        """Whether a measurement record is flipped."""
        return bool(self.p_meas > 0.0 and rng.random() < self.p_meas)
